#!/usr/bin/env python3
"""Validate a simctl --report=FILE RunReport JSON document.

Checks the structural contract documented in docs/OBSERVABILITY.md:
  * all top-level sections are present with the right JSON types;
  * the six lifecycle phases appear in order with sane values;
  * when the e2e latency came from the trace, the per-phase means sum to
    the end-to-end mean within 5% (they telescope, so in practice the
    difference is double rounding only);
  * the headline series exist and command counts are consistent.

Also validates kernel benchmark documents (bench/kernel_throughput's
BENCH_kernel.json) with --bench: schema check plus an optional events/sec
regression gate against a checked-in baseline.

--bench dispatches on the document's "schema" field: kernel documents
(dynastar-bench-kernel-v1, or -v2 which adds the parallel-executor
conflict-free speedup and conflict-heavy regression gates) get the
events/sec regression gate; overload
documents (dynastar-bench-overload-v1, from bench/overload_goodput) get the
goodput-under-surge and post-surge-recovery gates; STAR sweep documents
(dynastar-bench-star-v1, from bench/fig34_star_sweep) get the crossover
gate — DynaStar must beat STAR at the lowest multi-partition ratio and STAR
must beat DynaStar at the highest, each by the --min-crossover-margin;
transfer documents (dynastar-bench-transfer-v1, from
bench/state_transfer_wan) get the WAN state-transfer gates — goodput under
a 10x inter-site bandwidth drop must stay at --min-degraded-ratio of steady
state while a chunked snapshot install completes; read-lease documents
(dynastar-bench-lease-v1, from bench/fig5_latency_cdf --bench-lease, also
selectable with --lease) get the lease latency gates — leases-on must cut the multi-partition read-only
median by --min-lease-reduction while moving the single-partition median by
at most --max-single-shift.

Usage: check_report.py REPORT.json [--min-commands N]
       check_report.py --bench BENCH_kernel.json [--baseline FILE]
                       [--max-regression 0.25]
       check_report.py --bench BENCH_overload.json [--baseline FILE]
                       [--min-surge-ratio 0.5] [--min-recovery-ratio 0.9]
       check_report.py --bench BENCH_star.json [--baseline FILE]
                       [--min-crossover-margin 1.05]
       check_report.py --lease BENCH_lease.json [--baseline FILE]
                       [--min-lease-reduction 0.2] [--max-single-shift 0.02]
Exit code 0 on success, 1 with a message per violation otherwise.
"""

import argparse
import json
import sys

EXPECTED_SECTIONS = {
    "meta": dict,
    "phases": list,
    "e2e": dict,
    "series": dict,
    "histograms": dict,
    "counters": dict,
    "repartitions": list,
    "chaos": list,
}

EXPECTED_PHASES = ["retry", "resolve", "order", "coordinate", "execute", "reply"]

META_KEYS = ["workload", "mode", "seed", "duration_s", "partitions",
             "clients", "trace_enabled", "trace_events"]


def check(report, min_commands, wan=False):
    errors = []

    def err(msg):
        errors.append(msg)

    for key, kind in EXPECTED_SECTIONS.items():
        if key not in report:
            err(f"missing top-level section {key!r}")
        elif not isinstance(report[key], kind):
            err(f"section {key!r} is {type(report[key]).__name__}, "
                f"expected {kind.__name__}")
    if errors:
        return errors  # structure too broken to continue

    meta = report["meta"]
    for key in META_KEYS:
        if key not in meta:
            err(f"meta is missing {key!r}")

    phases = report["phases"]
    names = [p.get("name") for p in phases]
    if names != EXPECTED_PHASES:
        err(f"phase names/order {names} != {EXPECTED_PHASES}")
    for p in phases:
        for field in ("mean_ms", "total_ms", "count"):
            if not isinstance(p.get(field), (int, float)):
                err(f"phase {p.get('name')!r} missing numeric {field!r}")
            elif p[field] < 0:
                err(f"phase {p.get('name')!r} has negative {field!r}")

    e2e = report["e2e"]
    for field in ("source", "commands", "mean_ms"):
        if field not in e2e:
            err(f"e2e is missing {field!r}")
    if errors:
        return errors

    commands = e2e["commands"]
    if commands < min_commands:
        err(f"only {commands} completed commands (need >= {min_commands})")

    if e2e["source"] == "trace":
        phase_sum = sum(p["mean_ms"] for p in phases)
        mean = e2e["mean_ms"]
        if mean <= 0:
            err(f"e2e mean_ms is {mean}, expected > 0")
        elif abs(phase_sum - mean) > 0.05 * mean:
            err(f"phase means sum to {phase_sum:.6f} ms but e2e mean is "
                f"{mean:.6f} ms (off by more than 5%)")
        for p in phases:
            if p["count"] != commands:
                err(f"phase {p['name']!r} counted {p['count']} commands, "
                    f"e2e counted {commands}")
    elif meta.get("trace_enabled"):
        err("trace was enabled but e2e.source is not 'trace'")

    for name in ("completed", "executed"):
        if name not in report["series"]:
            err(f"series {name!r} missing from report")
        elif report["series"][name].get("total", 0) <= 0:
            err(f"series {name!r} has non-positive total")
    if not any(name.startswith("server.executed{") for name in report["series"]):
        err("no labeled server.executed{...} series in report")

    # Overload-protection and state-transfer counters are pre-registered by
    # core::System, so every report must carry them (zero when idle).
    for name in ("server.shed", "oracle.shed", "client.retries_exhausted",
                 "transfer.chunks_sent", "transfer.chunks_retransmitted"):
        value = report["counters"].get(name)
        if not isinstance(value, (int, float)):
            err(f"counter {name!r} missing or non-numeric")
        elif value < 0:
            err(f"counter {name!r} is {value}, expected >= 0")

    if wan:
        # A WAN run must have exercised the link-capacity model (per-link
        # byte accounting only exists on profiled links) and — when the
        # scenario forces a lagging replica — the chunked transfer path.
        if not any(name.startswith("network.bytes_sent{")
                   for name in report["series"]):
            err("WAN run produced no labeled network.bytes_sent{link=...} "
                "series — the link-capacity model never engaged")
        installs = report["counters"].get("server.snapshot_installs", 0)
        if not installs or installs < 1:
            err("WAN run recorded no server.snapshot_installs — the forced "
                "state transfer never completed")
        if report["counters"].get("transfer.chunks_sent", 0) < 1:
            err("WAN run sent no state-transfer chunks — the chunk protocol "
                "never engaged")

    return errors


BENCH_SCHEMA_V1 = "dynastar-bench-kernel-v1"
BENCH_SCHEMA_V2 = "dynastar-bench-kernel-v2"
BENCH_SCHEMAS = (BENCH_SCHEMA_V1, BENCH_SCHEMA_V2)
OVERLOAD_SCHEMA = "dynastar-bench-overload-v1"
TRANSFER_SCHEMA = "dynastar-bench-transfer-v1"
STAR_SCHEMA = "dynastar-bench-star-v1"
LEASE_SCHEMA = "dynastar-bench-lease-v1"

# section -> required numeric (strictly positive) fields
BENCH_SECTIONS = {
    "kernel": ["events", "pending", "events_per_sec"],
    "legacy_kernel": ["events", "pending", "events_per_sec"],
    "message_plane": ["messages", "messages_per_sec", "pool_allocs"],
    "full_stack": ["commands", "wall_seconds", "commands_per_sec"],
}

# v2 adds the parallel-executor sections (bench/kernel_throughput's
# conflict-free vs conflict-heavy lane gates).
PARALLEL_SIM_SECTIONS = ("sim_conflict_free", "sim_conflict_heavy")
PARALLEL_THREAD_SECTIONS = ("threads_conflict_free", "threads_conflict_heavy")


def check_parallel_exec(report, baseline, err,
                        min_lane_speedup, max_conflict_regression):
    """Gates for the v2 parallel_exec section.

    * sim_conflict_free.speedup: the deterministic modeled speedup of N
      simulated lanes over serial apply — machine-independent, so the
      1.5x floor holds everywhere.
    * threads_conflict_free.speedup: the wall-clock speedup of the real
      std::thread backend; only gated when the machine actually has at
      least `lanes` hardware threads to run them on.
    * sim_conflict_heavy.lanes_cps vs baseline: simulated commands/sec are
      bit-deterministic, so a conflict-heavy regression beyond the budget
      is a real scheduling/batching change, not noise.
    """
    parallel = report.get("parallel_exec")
    if not isinstance(parallel, dict):
        err("missing section 'parallel_exec' (required by schema v2)")
        return
    lanes = parallel.get("lanes")
    if not isinstance(lanes, (int, float)) or lanes < 2:
        err(f"parallel_exec.lanes is {lanes!r}, expected >= 2")
        return
    for section in PARALLEL_SIM_SECTIONS:
        body = parallel.get(section)
        if not isinstance(body, dict):
            err(f"missing section parallel_exec.{section}")
            return
        for field in ("serial_cps", "lanes_cps", "speedup"):
            if not isinstance(body.get(field), (int, float)) or body[field] <= 0:
                err(f"parallel_exec.{section}.{field} missing or non-positive")
                return
    for section in PARALLEL_THREAD_SECTIONS:
        body = parallel.get(section)
        if not isinstance(body, dict):
            err(f"missing section parallel_exec.{section}")
            return
        for field in ("serial_wall_s", "lanes_wall_s", "speedup"):
            if not isinstance(body.get(field), (int, float)) or body[field] <= 0:
                err(f"parallel_exec.{section}.{field} missing or non-positive")
                return

    sim_free = parallel["sim_conflict_free"]["speedup"]
    if sim_free < min_lane_speedup:
        err(f"simulated {lanes:.0f}-lane conflict-free speedup is "
            f"{sim_free:.2f}x, below the {min_lane_speedup:.2f}x floor — "
            f"the executor is not extracting the declared parallelism")

    cores = parallel.get("hardware_concurrency", 0)
    thr_free = parallel["threads_conflict_free"]["speedup"]
    if isinstance(cores, (int, float)) and cores >= lanes:
        if thr_free < min_lane_speedup:
            err(f"thread-backend conflict-free speedup is {thr_free:.2f}x "
                f"at {lanes:.0f} lanes on {cores:.0f} cores, below the "
                f"{min_lane_speedup:.2f}x floor")

    if baseline is not None:
        base = baseline.get("parallel_exec", {}).get("sim_conflict_heavy", {})
        base_cps = base.get("lanes_cps")
        if isinstance(base_cps, (int, float)) and base_cps > 0:
            cps = parallel["sim_conflict_heavy"]["lanes_cps"]
            floor = base_cps * (1.0 - max_conflict_regression)
            if cps < floor:
                err(f"conflict-heavy throughput with lanes regressed: "
                    f"{cps:.0f} < {floor:.0f} commands/sec ({base_cps:.0f} "
                    f"baseline, {max_conflict_regression:.0%} budget)")


def check_bench(report, baseline, max_regression,
                min_lane_speedup, max_conflict_regression):
    errors = []

    def err(msg):
        errors.append(msg)

    schema = report.get("schema")
    if schema not in BENCH_SCHEMAS:
        err(f"schema is {schema!r}, expected one of {BENCH_SCHEMAS!r}")
        return errors
    for section, fields in BENCH_SECTIONS.items():
        body = report.get(section)
        if not isinstance(body, dict):
            err(f"missing section {section!r}")
            continue
        for field in fields:
            value = body.get(field)
            if not isinstance(value, (int, float)):
                err(f"{section}.{field} missing or non-numeric")
            elif value <= 0:
                err(f"{section}.{field} is {value}, expected > 0")
    if not isinstance(report.get("speedup_vs_legacy"), (int, float)):
        err("speedup_vs_legacy missing or non-numeric")
    if errors:
        return errors

    # pool_reuses may legitimately be zero on a cold run, but a steady-state
    # storm should recycle nearly everything.
    reuses = report["message_plane"].get("pool_reuses", 0)
    allocs = report["message_plane"]["pool_allocs"]
    if reuses < 0.5 * allocs:
        err(f"message pool reused only {reuses} of {allocs} allocations")

    # Checkpointing cost gate: the default-on checkpoint subsystem may cost
    # at most 5% of full-stack throughput vs the same run with checkpoints
    # disabled. Older bench documents without the section still validate.
    nockpt = report.get("full_stack_nockpt")
    if isinstance(nockpt, dict):
        base_cps = nockpt.get("commands_per_sec")
        cps = report["full_stack"]["commands_per_sec"]
        if not isinstance(base_cps, (int, float)) or base_cps <= 0:
            err("full_stack_nockpt.commands_per_sec missing or non-positive")
        elif cps < 0.95 * base_cps:
            err(f"checkpointing costs too much: full_stack "
                f"{cps:.0f} commands/sec < 95% of no-checkpoint "
                f"{base_cps:.0f} commands/sec")

    if schema == BENCH_SCHEMA_V2:
        check_parallel_exec(report, baseline, err,
                            min_lane_speedup, max_conflict_regression)

    if baseline is not None:
        base_eps = baseline.get("kernel", {}).get("events_per_sec")
        if not isinstance(base_eps, (int, float)) or base_eps <= 0:
            err("baseline kernel.events_per_sec missing or non-positive")
        else:
            eps = report["kernel"]["events_per_sec"]
            floor = base_eps * (1.0 - max_regression)
            if eps < floor:
                err(f"kernel events/sec regressed: {eps:.0f} < {floor:.0f} "
                    f"({base_eps:.0f} baseline, {max_regression:.0%} budget)")
    return errors


OVERLOAD_WINDOWS = ["baseline", "surge", "recovery"]


def check_overload_bench(report, baseline, max_regression,
                         min_surge_ratio, min_recovery_ratio):
    errors = []

    def err(msg):
        errors.append(msg)

    for window in OVERLOAD_WINDOWS:
        body = report.get(window)
        if not isinstance(body, dict):
            err(f"missing window {window!r}")
            continue
        for field in ("seconds", "ok_commands", "goodput_per_sec"):
            value = body.get(field)
            if not isinstance(value, (int, float)):
                err(f"{window}.{field} missing or non-numeric")
            elif value < 0:
                err(f"{window}.{field} is {value}, expected >= 0")
    for field in ("surge_ratio", "recovery_ratio"):
        if not isinstance(report.get(field), (int, float)):
            err(f"{field} missing or non-numeric")
    if errors:
        return errors

    if report["baseline"]["goodput_per_sec"] <= 0:
        err("baseline goodput is zero — the run produced no successful "
            "commands before the surge")
        return errors

    # The whole point: shedding must keep goodput up during the surge
    # (no metastable collapse) and let it recover afterwards.
    if report["surge_ratio"] < min_surge_ratio:
        err(f"goodput during surge dropped to {report['surge_ratio']:.0%} "
            f"of baseline (floor {min_surge_ratio:.0%}) — queues are not "
            f"shedding early enough")
    if report["recovery_ratio"] < min_recovery_ratio:
        err(f"goodput after surge recovered to only "
            f"{report['recovery_ratio']:.0%} of baseline "
            f"(floor {min_recovery_ratio:.0%}) — metastable failure")

    shed = report.get("shed", {})
    total_shed = shed.get("server", 0) + shed.get("oracle", 0)
    if total_shed <= 0:
        err("no commands were shed during a 2x-saturation surge — the "
            "admission gates are not engaging")

    if baseline is not None:
        base_goodput = baseline.get("baseline", {}).get("goodput_per_sec")
        if not isinstance(base_goodput, (int, float)) or base_goodput <= 0:
            err("baseline file baseline.goodput_per_sec missing or "
                "non-positive")
        else:
            goodput = report["baseline"]["goodput_per_sec"]
            floor = base_goodput * (1.0 - max_regression)
            if goodput < floor:
                err(f"pre-surge goodput regressed: {goodput:.0f} < "
                    f"{floor:.0f} ({base_goodput:.0f} baseline, "
                    f"{max_regression:.0%} budget)")
    return errors


TRANSFER_WINDOWS = ["steady", "degraded"]


def check_transfer_bench(report, baseline, max_regression, min_degraded_ratio):
    """Gates for bench/state_transfer_wan's WAN state-transfer document.

    The scenario runs a WAN topology, crashes a replica long enough that
    recovery needs a chunked snapshot install, and collapses inter-site
    bandwidth 10x over the middle window. The system must keep executing on
    unaffected state: goodput in the degraded window stays at or above
    min_degraded_ratio of the steady window, and the chunk protocol must
    actually have carried the install (chunks sent, install completed).
    """
    errors = []

    def err(msg):
        errors.append(msg)

    for window in TRANSFER_WINDOWS:
        body = report.get(window)
        if not isinstance(body, dict):
            err(f"missing window {window!r}")
            continue
        for field in ("seconds", "ok_commands", "goodput_per_sec"):
            value = body.get(field)
            if not isinstance(value, (int, float)):
                err(f"{window}.{field} missing or non-numeric")
            elif value < 0:
                err(f"{window}.{field} is {value}, expected >= 0")
    if not isinstance(report.get("degraded_ratio"), (int, float)):
        err("degraded_ratio missing or non-numeric")
    transfer = report.get("transfer")
    if not isinstance(transfer, dict):
        err("missing section 'transfer'")
    if errors:
        return errors

    if report["steady"]["goodput_per_sec"] <= 0:
        err("steady goodput is zero — the run produced no successful "
            "commands before the bandwidth collapse")
        return errors

    if report["degraded_ratio"] < min_degraded_ratio:
        err(f"goodput under the 10x bandwidth drop fell to "
            f"{report['degraded_ratio']:.0%} of steady state "
            f"(floor {min_degraded_ratio:.0%}) — the chunked transfer is "
            f"starving command execution")

    if transfer.get("chunks_sent", 0) < 1:
        err("no state-transfer chunks were sent — the chunk protocol never "
            "engaged")
    if transfer.get("snapshot_installs", 0) < 1:
        err("no snapshot install completed — recovery never finished the "
            "chunked transfer")

    if baseline is not None:
        base_goodput = baseline.get("steady", {}).get("goodput_per_sec")
        if not isinstance(base_goodput, (int, float)) or base_goodput <= 0:
            err("baseline file steady.goodput_per_sec missing or "
                "non-positive")
        else:
            goodput = report["steady"]["goodput_per_sec"]
            floor = base_goodput * (1.0 - max_regression)
            if goodput < floor:
                err(f"steady WAN goodput regressed: {goodput:.0f} < "
                    f"{floor:.0f} ({base_goodput:.0f} baseline, "
                    f"{max_regression:.0%} budget)")
    return errors


def check_star_bench(report, baseline, max_regression, min_crossover_margin):
    errors = []

    def err(msg):
        errors.append(msg)

    sweep = report.get("sweep")
    if not isinstance(sweep, list) or len(sweep) < 2:
        err("sweep missing or has fewer than 2 points")
        return errors
    fractions = []
    for i, point in enumerate(sweep):
        frac = point.get("multi_fraction")
        if not isinstance(frac, (int, float)) or not 0 <= frac <= 1:
            err(f"sweep[{i}].multi_fraction missing or outside [0, 1]")
            continue
        fractions.append(frac)
        for system in ("dynastar", "star"):
            body = point.get(system)
            if not isinstance(body, dict):
                err(f"sweep[{i}] (multi={frac}) missing curve {system!r}")
                continue
            tps = body.get("tps")
            if not isinstance(tps, (int, float)) or tps <= 0:
                err(f"sweep[{i}].{system}.tps missing or non-positive")
    if errors:
        return errors
    if fractions != sorted(fractions) or len(set(fractions)) != len(fractions):
        err(f"multi_fraction values {fractions} are not strictly increasing")
        return errors

    low, high = sweep[0], sweep[-1]
    # The crossover: each design must win its end of the sweep by a real
    # margin, proving the asymmetric mode is a trade and not a strict win.
    low_dyna, low_star = low["dynastar"]["tps"], low["star"]["tps"]
    if low_dyna < low_star * min_crossover_margin:
        err(f"at multi={low['multi_fraction']} dynastar ({low_dyna:.0f}/s) "
            f"does not beat star ({low_star:.0f}/s) by "
            f"{min_crossover_margin:.2f}x — the partitioned fast path lost "
            f"its advantage on single-partition work")
    high_dyna, high_star = high["dynastar"]["tps"], high["star"]["tps"]
    if high_star < high_dyna * min_crossover_margin:
        err(f"at multi={high['multi_fraction']} star ({high_star:.0f}/s) "
            f"does not beat dynastar ({high_dyna:.0f}/s) by "
            f"{min_crossover_margin:.2f}x — deferred master epochs lost to "
            f"borrow/return")
    # The deferred path must actually have run at the multi-heavy end.
    if high["star"].get("epochs", 0) <= 0 or high["star"].get("deferred", 0) <= 0:
        err(f"at multi={high['multi_fraction']} star reported no epochs or "
            f"deferred commands — the asymmetric path never executed")

    if baseline is not None:
        base_sweep = baseline.get("sweep")
        if not isinstance(base_sweep, list) or not base_sweep:
            err("baseline file has no sweep")
        else:
            base_by_frac = {p.get("multi_fraction"): p for p in base_sweep}
            for point in sweep:
                base = base_by_frac.get(point["multi_fraction"])
                if base is None:
                    continue
                for system in ("dynastar", "star"):
                    base_tps = base.get(system, {}).get("tps")
                    if not isinstance(base_tps, (int, float)) or base_tps <= 0:
                        continue
                    tps = point[system]["tps"]
                    floor = base_tps * (1.0 - max_regression)
                    if tps < floor:
                        err(f"{system} tps at multi="
                            f"{point['multi_fraction']} regressed: "
                            f"{tps:.0f} < {floor:.0f} ({base_tps:.0f} "
                            f"baseline, {max_regression:.0%} budget)")
    return errors


LEASE_SIDES = ["off", "on"]
LEASE_POPULATIONS = ["multi_ro", "single", "multi_write"]


def check_lease_bench(report, baseline, max_regression,
                      min_lease_reduction, max_single_shift):
    errors = []

    def err(msg):
        errors.append(msg)

    for side in LEASE_SIDES:
        body = report.get(side)
        if not isinstance(body, dict):
            err(f"missing side {side!r}")
            continue
        for pop in LEASE_POPULATIONS:
            stats = body.get(pop)
            if not isinstance(stats, dict):
                err(f"{side}.{pop} missing")
                continue
            for field in ("count", "median_ms"):
                value = stats.get(field)
                if not isinstance(value, (int, float)):
                    err(f"{side}.{pop}.{field} missing or non-numeric")
                elif value <= 0:
                    err(f"{side}.{pop}.{field} is {value}, expected > 0")
    for field in ("multi_ro_median_reduction", "single_median_shift"):
        if not isinstance(report.get(field), (int, float)):
            err(f"{field} missing or non-numeric")
    if errors:
        return errors

    # Leases must pay for themselves on the population they serve...
    reduction = report["multi_ro_median_reduction"]
    if reduction < min_lease_reduction:
        err(f"leases-on cut the multi-partition read-only median by only "
            f"{reduction:.0%} (floor {min_lease_reduction:.0%}) — the "
            f"borrow-free read path is not delivering")
    # ...without perturbing traffic that never touches them...
    shift = abs(report["single_median_shift"])
    if shift > max_single_shift:
        err(f"single-partition median moved {shift:.1%} between runs "
            f"(budget {max_single_shift:.1%}) — leases are not isolated "
            f"from unrelated traffic")
    # ...and without slowing the write path, which still borrows/returns
    # (it may well get faster: writes no longer queue behind blocked reads).
    write_off = report["off"]["multi_write"]["median_ms"]
    write_on = report["on"]["multi_write"]["median_ms"]
    if write_on > write_off * (1.0 + max_single_shift):
        err(f"multi-partition write median regressed with leases on: "
            f"{write_on:.3f} ms > {write_off:.3f} ms + {max_single_shift:.0%}")

    # The leased path must actually have run, and mostly validated.
    reads = report["on"].get("lease_reads", 0)
    fallbacks = report["on"].get("lease_fallbacks", 0)
    if not isinstance(reads, (int, float)) or reads <= 0:
        err("leases-on run recorded no lease_reads — the fast path never "
            "engaged")
    elif isinstance(fallbacks, (int, float)) and fallbacks > 0.1 * reads:
        err(f"{fallbacks:.0f} lease fallbacks against {reads:.0f} leased "
            f"reads (> 10%) — validation is failing too often")
    off_reads = report["off"].get("lease_reads")
    if isinstance(off_reads, (int, float)) and off_reads != 0:
        err(f"leases-off run recorded {off_reads:.0f} lease_reads — the "
            f"control run is contaminated")

    if baseline is not None:
        base_median = baseline.get("on", {}).get("multi_ro", {}) \
                              .get("median_ms")
        if not isinstance(base_median, (int, float)) or base_median <= 0:
            err("baseline file on.multi_ro.median_ms missing or non-positive")
        else:
            median = report["on"]["multi_ro"]["median_ms"]
            ceiling = base_median * (1.0 + max_regression)
            if median > ceiling:
                err(f"leases-on multi-partition read-only median regressed: "
                    f"{median:.3f} ms > {ceiling:.3f} ms ({base_median:.3f} "
                    f"baseline, {max_regression:.0%} budget)")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("report", help="path to RunReport (or bench) JSON")
    parser.add_argument("--min-commands", type=int, default=100,
                        help="minimum completed commands expected (default 100)")
    parser.add_argument("--wan", action="store_true",
                        help="RunReport mode: additionally require the WAN "
                             "evidence — labeled network.bytes_sent{link=...} "
                             "series, >= 1 snapshot install and >= 1 "
                             "state-transfer chunk sent")
    parser.add_argument("--bench", action="store_true",
                        help="validate a BENCH_kernel.json document instead")
    parser.add_argument("--lease", action="store_true",
                        help="validate a BENCH_lease.json document "
                             "(fig5_latency_cdf --bench-lease); implies "
                             "--bench and requires the lease schema")
    parser.add_argument("--baseline",
                        help="baseline bench JSON for the regression gate")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="events/sec regression budget vs baseline "
                             "(default 0.25)")
    parser.add_argument("--min-surge-ratio", type=float, default=0.5,
                        help="overload bench: goodput floor during the surge "
                             "as a fraction of baseline (default 0.5)")
    parser.add_argument("--min-recovery-ratio", type=float, default=0.9,
                        help="overload bench: post-surge goodput floor as a "
                             "fraction of baseline (default 0.9)")
    parser.add_argument("--min-degraded-ratio", type=float, default=0.7,
                        help="transfer bench: goodput floor during the 10x "
                             "bandwidth drop as a fraction of steady state "
                             "(default 0.7)")
    parser.add_argument("--min-lease-reduction", type=float, default=0.2,
                        help="lease bench: minimum fractional cut in the "
                             "multi-partition read-only median from enabling "
                             "leases (default 0.2)")
    parser.add_argument("--max-single-shift", type=float, default=0.02,
                        help="lease bench: budget for movement of the "
                             "single-partition median between the two runs "
                             "(default 0.02)")
    parser.add_argument("--min-crossover-margin", type=float, default=1.05,
                        help="star bench: factor by which each system must "
                             "beat the other at its end of the sweep "
                             "(default 1.05)")
    parser.add_argument("--min-lane-speedup", type=float, default=1.5,
                        help="kernel bench v2: conflict-free speedup floor "
                             "for the parallel executor, simulated lanes "
                             "always and the thread backend when the machine "
                             "has enough cores (default 1.5)")
    parser.add_argument("--max-conflict-regression", type=float, default=0.05,
                        help="kernel bench v2: budget for conflict-heavy "
                             "commands/sec with lanes vs the checked-in "
                             "baseline (default 0.05)")
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_report: cannot read {args.report}: {exc}", file=sys.stderr)
        return 1

    if args.bench or args.lease:
        baseline = None
        if args.baseline:
            try:
                with open(args.baseline, encoding="utf-8") as f:
                    baseline = json.load(f)
            except (OSError, json.JSONDecodeError) as exc:
                print(f"check_report: cannot read {args.baseline}: {exc}",
                      file=sys.stderr)
                return 1
        if args.lease or report.get("schema") == LEASE_SCHEMA:
            if report.get("schema") != LEASE_SCHEMA:
                print(f"check_report: schema is {report.get('schema')!r}, "
                      f"expected {LEASE_SCHEMA!r}", file=sys.stderr)
                return 1
            errors = check_lease_bench(report, baseline,
                                       args.max_regression,
                                       args.min_lease_reduction,
                                       args.max_single_shift)
            if errors:
                for msg in errors:
                    print(f"check_report: {msg}", file=sys.stderr)
                return 1
            print(f"check_report: OK — lease gate: multi-partition read-only "
                  f"median {report['off']['multi_ro']['median_ms']:.3f} -> "
                  f"{report['on']['multi_ro']['median_ms']:.3f} ms "
                  f"({report['multi_ro_median_reduction']:.0%} cut), single "
                  f"median shift {report['single_median_shift']:+.2%}, "
                  f"{report['on']['lease_reads']:.0f} leased reads")
            return 0
        if report.get("schema") == OVERLOAD_SCHEMA:
            errors = check_overload_bench(report, baseline,
                                          args.max_regression,
                                          args.min_surge_ratio,
                                          args.min_recovery_ratio)
            if errors:
                for msg in errors:
                    print(f"check_report: {msg}", file=sys.stderr)
                return 1
            print(f"check_report: OK — goodput baseline "
                  f"{report['baseline']['goodput_per_sec']:.0f}/s, surge "
                  f"{report['surge_ratio']:.0%}, recovery "
                  f"{report['recovery_ratio']:.0%}")
            return 0
        if report.get("schema") == TRANSFER_SCHEMA:
            errors = check_transfer_bench(report, baseline,
                                          args.max_regression,
                                          args.min_degraded_ratio)
            if errors:
                for msg in errors:
                    print(f"check_report: {msg}", file=sys.stderr)
                return 1
            print(f"check_report: OK — WAN transfer gate: steady "
                  f"{report['steady']['goodput_per_sec']:.0f}/s, degraded "
                  f"window {report['degraded_ratio']:.0%} of steady, "
                  f"{report['transfer'].get('chunks_sent', 0):.0f} chunks "
                  f"({report['transfer'].get('chunks_retransmitted', 0):.0f} "
                  f"retransmitted)")
            return 0
        if report.get("schema") == STAR_SCHEMA:
            errors = check_star_bench(report, baseline, args.max_regression,
                                      args.min_crossover_margin)
            if errors:
                for msg in errors:
                    print(f"check_report: {msg}", file=sys.stderr)
                return 1
            sweep = report["sweep"]
            print(f"check_report: OK — star sweep over "
                  f"{len(sweep)} multi-partition ratios; at "
                  f"{sweep[0]['multi_fraction']} dynastar leads "
                  f"{sweep[0]['dynastar']['tps']:.0f}/s vs "
                  f"{sweep[0]['star']['tps']:.0f}/s, at "
                  f"{sweep[-1]['multi_fraction']} star leads "
                  f"{sweep[-1]['star']['tps']:.0f}/s vs "
                  f"{sweep[-1]['dynastar']['tps']:.0f}/s")
            return 0
        errors = check_bench(report, baseline, args.max_regression,
                             args.min_lane_speedup,
                             args.max_conflict_regression)
        if errors:
            for msg in errors:
                print(f"check_report: {msg}", file=sys.stderr)
            return 1
        print(f"check_report: OK — kernel "
              f"{report['kernel']['events_per_sec']:.0f} events/sec "
              f"({report['speedup_vs_legacy']:.2f}x vs legacy), message plane "
              f"{report['message_plane']['messages_per_sec']:.0f} msgs/sec")
        return 0

    errors = check(report, args.min_commands, wan=args.wan)
    if errors:
        for msg in errors:
            print(f"check_report: {msg}", file=sys.stderr)
        return 1

    phases = {p["name"]: p["mean_ms"] for p in report["phases"]}
    summary = " ".join(f"{k}={v:.3f}" for k, v in phases.items())
    print(f"check_report: OK — {int(report['e2e']['commands'])} commands, "
          f"e2e {report['e2e']['mean_ms']:.3f} ms ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
