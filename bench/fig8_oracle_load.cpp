// Figure 8: queries served by the oracle over time (Chirper).
//
// Steady state: clients have every location cached, so the oracle serves
// ~zero queries. A repartition (triggered mid-run) invalidates every cache;
// queries spike as clients refresh, then decay back toward zero.
#include <cstdio>

#include "bench/chirper_common.h"

using namespace dynastar;

int main() {
  const std::size_t duration = bench::full_mode() ? 160 : 80;
  const std::size_t trigger_at = duration / 2;

  auto config = baselines::config_for("dynastar", 4);
  config.repartition_hint_threshold = 1'000'000'000;  // manual trigger below

  bench::ChirperParams params;
  params.clients_per_partition = 10;
  auto setup = bench::make_chirper(config, bench::chirper::Placement::kRandom,
                                   params);
  // Warm up and let every client fill its cache, then force a repartition.
  setup.system->run_until(seconds(static_cast<std::int64_t>(trigger_at)));
  setup.system->oracle(0).request_repartition();
  setup.system->oracle(1).request_repartition();
  setup.system->run_until(seconds(static_cast<std::int64_t>(duration)));

  std::printf("=== Figure 8: throughput at the oracle (queries/s) ===\n");
  std::printf("(repartition requested at t=%zus)\n", trigger_at);
  std::printf("%4s %12s %12s\n", "t(s)", "oracle q/s", "client retries/s");
  const auto& queries = setup.system->metrics().series("oracle.queries");
  const auto& retries = setup.system->metrics().series("client.retries");
  for (std::size_t t = 0; t < duration; ++t)
    std::printf("%4zu %12.0f %12.0f\n", t, queries.at(t), retries.at(t));
  std::printf(
      "\nReading guide (vs paper Fig. 8): near-zero oracle load while caches\n"
      "are valid; the repartition invalidates every client cache, queries\n"
      "spike, then decay to ~zero as caches repopulate. The oracle is not a\n"
      "bottleneck.\n");
  return 0;
}
