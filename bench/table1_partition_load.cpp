// Table 1: average per-partition load at peak throughput (Chirper mix,
// 4 partitions): commands served, multi-partition commands per second, and
// objects exchanged per second.
//
// Shape to check: load is skewed across partitions even though objects are
// evenly distributed — Zipfian users make some partitions hotter (the
// paper's partitions 1-2 serve ~2x partitions 3-4).
#include <cstdio>
#include <string>

#include "bench/chirper_common.h"
#include "common/metric_names.h"

using namespace dynastar;

int main() {
  const std::uint32_t partitions = 4;
  auto config = baselines::config_for("dynastar", partitions);
  config.repartition_hint_threshold = 1'000'000'000;

  bench::ChirperParams params;
  params.clients_per_partition = 14;  // saturating
  auto setup = bench::make_chirper(config, bench::chirper::Placement::kOptimized,
                                   params);
  const std::size_t warmup = 2, measure = 5;
  setup.system->run_until(seconds(warmup + measure));

  std::printf("=== Table 1: average load at partitions at peak throughput ===\n");
  std::printf("%9s %12s %24s %26s\n", "Partition", "Tput",
              "M-part commands per sec", "Exchanged objects per sec");
  auto& metrics = setup.system->metrics();
  for (std::uint32_t p = 0; p < partitions; ++p) {
    // Primary-replica labeled series, e.g. server.executed{partition=2,replica=0}.
    const std::string part = std::to_string(p);
    const double tput = bench::window_rate(
        metrics.series(metric::kServerExecuted,
                       {{"partition", part}, {"replica", "0"}}),
        warmup, warmup + measure);
    const double mpart = bench::window_rate(
        metrics.series(metric::kServerMultiPartition,
                       {{"partition", part}, {"replica", "0"}}),
        warmup, warmup + measure);
    const double exchanged = bench::window_rate(
        metrics.series(metric::kServerObjectsExchanged,
                       {{"partition", part}, {"replica", "0"}}),
        warmup, warmup + measure);
    std::printf("%9u %12.0f %24.0f %26.0f\n", p + 1, tput, mpart, exchanged);
  }
  std::printf(
      "\nReading guide (vs paper Table 1): despite balanced object placement\n"
      "the served load is skewed (~2x between hottest and coldest partition)\n"
      "because Zipfian clients hit some users' partitions far more often.\n");
  return 0;
}
