// Overload goodput benchmark: drives the full DynaStar stack through a
// scripted 2x client surge — with a crash-recovery snapshot install landing
// inside the surge window — and reports goodput (kOk completions/sec) over
// three windows:
//
//   baseline  [1s,  6s)  steady closed-loop clients only
//   surge     [6s, 10s)  2x extra surge clients; one replica crashes at
//                        6.2s and recovers at 8.2s via snapshot install
//   recovery  [11s, 15s) surge over, all replicas up
//
// The metastable-failure gate (scripts/check_report.py --bench):
//   surge_ratio    = surge goodput    / baseline goodput  >= 0.5
//   recovery_ratio = recovery goodput / baseline goodput  >= 0.9
// i.e. bounded admission queues + Busy shedding keep the system doing useful
// work at half its calm rate under 2x-saturation-plus-fault pressure, and it
// returns to its calm rate instead of collapsing into a retry storm.
//
// Everything is scripted (fixed seed, fixed crash/surge instants), so the
// emitted BENCH_overload.json is reproducible run-to-run.
//
// Usage: overload_goodput [output.json]   (default BENCH_overload.json)
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/metric_names.h"
#include "core/scenario.h"
#include "core/system.h"
#include "sim/world.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"

namespace dynastar {
namespace {

constexpr std::uint64_t kKeys = 12;
constexpr std::size_t kSteadyClients = 8;
constexpr std::size_t kSurgeClients = 16;  // 2x the steady population

constexpr std::int64_t kBaselineFrom = 1, kBaselineTo = 6;
constexpr std::int64_t kSurgeFrom = 6, kSurgeTo = 10;
constexpr std::int64_t kRecoveryFrom = 11, kRecoveryTo = 15;

/// Records every successful completion instant; `completed` alone would
/// also count kTimeout / kOverloaded completions, which are not goodput.
class GoodputDriver final : public core::ClientDriver {
 public:
  GoodputDriver(std::unique_ptr<core::ClientDriver> inner,
                std::vector<SimTime>* oks)
      : inner_(std::move(inner)), oks_(oks) {}

  std::optional<core::CommandSpec> next(Rng& rng, SimTime now) override {
    return inner_->next(rng, now);
  }

  void on_result(const core::CommandSpec& spec, core::ReplyStatus status,
                 const sim::MessagePtr& payload, SimTime issued_at,
                 SimTime completed_at) override {
    if (status == core::ReplyStatus::kOk) oks_->push_back(completed_at);
    inner_->on_result(spec, status, payload, issued_at, completed_at);
  }

 private:
  std::unique_ptr<core::ClientDriver> inner_;
  std::vector<SimTime>* oks_;
};

struct Window {
  std::int64_t from_s = 0;
  std::int64_t to_s = 0;
  std::uint64_t ok_commands = 0;

  [[nodiscard]] double seconds() const {
    return static_cast<double>(to_s - from_s);
  }
  [[nodiscard]] double goodput() const {
    return static_cast<double>(ok_commands) / seconds();
  }
};

Window count_window(const std::vector<SimTime>& oks, std::int64_t from_s,
                    std::int64_t to_s) {
  Window w;
  w.from_s = from_s;
  w.to_s = to_s;
  const SimTime from = seconds(from_s), to = seconds(to_s);
  for (SimTime t : oks)
    if (t >= from && t < to) ++w.ok_commands;
  return w;
}

Json window_json(const Window& w) {
  return Json::Object{
      {"from_s", w.from_s},
      {"to_s", w.to_s},
      {"seconds", w.seconds()},
      {"ok_commands", w.ok_commands},
      {"goodput_per_sec", w.goodput()},
  };
}

}  // namespace
}  // namespace dynastar

int main(int argc, char** argv) {
  using namespace dynastar;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_overload.json";

  std::vector<SimTime> oks;
  const auto driver_factory = [&oks](std::size_t) {
    return std::make_unique<GoodputDriver>(
        std::make_unique<workloads::RandomKvDriver>(kKeys, 0.5, 0.2), &oks);
  };

  auto system =
      core::ScenarioBuilder()
          .execution_mode(core::ExecutionMode::kDynaStar)
          .partitions(3)
          .seed(42)
          .queue_cap(8)
          .tune([](core::SystemConfig& c) {
            c.oracle_inflight_cap = 16;
            // A 2-second outage outruns peers' retained logs, so the
            // recovery inside the surge window REQUIRES a snapshot install.
            c.paxos.checkpoint_interval = 32;
            c.paxos.catchup_window = 8;
          })
          .app(workloads::kv_app_factory())
          .preload_kv(kKeys, workloads::KvObject(0))
          .clients(kSteadyClients, driver_factory)
          .surge_clients(kSurgeClients, driver_factory)
          .build();

  auto& world = system->world();
  world.sim().schedule_at(seconds(kSurgeFrom), [&world] {
    world.begin_surge();
  });
  world.sim().schedule_at(seconds(kSurgeTo), [&world] { world.end_surge(); });
  // Crash a partition-0 follower 200 ms into the surge; it recovers while
  // the surge is still running and must install a snapshot under load.
  const ProcessId victim =
      system->topology().group(core::group_of(PartitionId{0})).replicas[1];
  world.sim().schedule_at(seconds(kSurgeFrom) + milliseconds(200),
                          [&world, victim] { world.crash(victim); });
  world.sim().schedule_at(seconds(kSurgeFrom) + milliseconds(2200),
                          [&world, victim] { world.recover(victim); });

  std::printf("overload_goodput: %zu steady + %zu surge clients, "
              "caps server=8 oracle=16, crash+recover inside surge...\n",
              kSteadyClients, kSurgeClients);
  system->run_until(seconds(kRecoveryTo));

  const Window baseline = count_window(oks, kBaselineFrom, kBaselineTo);
  const Window surge = count_window(oks, kSurgeFrom, kSurgeTo);
  const Window recovery = count_window(oks, kRecoveryFrom, kRecoveryTo);
  const double surge_ratio = surge.goodput() / baseline.goodput();
  const double recovery_ratio = recovery.goodput() / baseline.goodput();

  const double server_shed = system->metrics().counter(metric::kServerShed);
  const double oracle_shed = system->metrics().counter(metric::kOracleShed);
  const double snapshot_installs =
      system->metrics().counter(metric::kServerSnapshotInstalls);

  std::printf("  baseline : %6llu ok in %.0fs = %8.1f/s\n",
              static_cast<unsigned long long>(baseline.ok_commands),
              baseline.seconds(), baseline.goodput());
  std::printf("  surge    : %6llu ok in %.0fs = %8.1f/s  (ratio %.2f)\n",
              static_cast<unsigned long long>(surge.ok_commands),
              surge.seconds(), surge.goodput(), surge_ratio);
  std::printf("  recovery : %6llu ok in %.0fs = %8.1f/s  (ratio %.2f)\n",
              static_cast<unsigned long long>(recovery.ok_commands),
              recovery.seconds(), recovery.goodput(), recovery_ratio);
  std::printf("  shed     : server %.0f, oracle %.0f; snapshot installs %.0f\n",
              server_shed, oracle_shed, snapshot_installs);

  Json report = Json::Object{};
  report["schema"] = "dynastar-bench-overload-v1";
  report["config"] = Json::Object{
      {"steady_clients", static_cast<std::uint64_t>(kSteadyClients)},
      {"surge_clients", static_cast<std::uint64_t>(kSurgeClients)},
      {"server_queue_cap", static_cast<std::uint64_t>(8)},
      {"oracle_inflight_cap", static_cast<std::uint64_t>(16)},
      {"seed", static_cast<std::uint64_t>(42)},
  };
  report["baseline"] = window_json(baseline);
  report["surge"] = window_json(surge);
  report["recovery"] = window_json(recovery);
  report["surge_ratio"] = surge_ratio;
  report["recovery_ratio"] = recovery_ratio;
  report["shed"] = Json::Object{
      {"server", server_shed},
      {"oracle", oracle_shed},
  };
  report["snapshot_installs"] = snapshot_installs;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  const std::string text = report.dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
