// Figure 6: DynaStar (a) vs S-SMR (b) under an evolving social network.
//
// The paper starts DynaStar from a random placement and S-SMR* from the
// METIS-optimized one, introduces a celebrity user at t=200s (users start
// following them, the celebrity posts frequently), and shows DynaStar's
// repartitioning (i) catching up with and overtaking S-SMR* after the first
// plan and (ii) re-adapting after the graph change, while S-SMR degrades.
//
// Time axis compressed: default 100 simulated seconds with the celebrity at
// t=40s; the hint threshold is tuned so the first plan lands ~10-20s in and
// another follows the celebrity shift.
#include <cstdio>

#include "bench/chirper_common.h"

using namespace dynastar;
namespace chirper = workloads::chirper;

namespace {

void run(core::ExecutionMode mode, const char* label) {
  const std::size_t duration = bench::full_mode() ? 400 : 100;
  const SimTime celebrity_start =
      seconds(static_cast<std::int64_t>(duration * 2 / 5));
  const std::uint32_t partitions = 4;

  auto config = mode == core::ExecutionMode::kDynaStar
                    ? baselines::config_for("dynastar", partitions)
                    : baselines::config_for("ssmr", partitions);
  config.repartition_hint_threshold =
      bench::env_u64("DYNASTAR_FIG6_THRESHOLD", 60'000);

  bench::ChirperParams params;
  params.clients_per_partition = 10;

  auto placement = mode == core::ExecutionMode::kDynaStar
                       ? chirper::Placement::kRandom
                       : chirper::Placement::kOptimized;
  auto graph = workloads::generate_social_graph(params.users,
                                                params.edges_per_user,
                                                params.seed);
  core::System system(config, chirper::chirper_app_factory());
  chirper::setup(system, graph, placement, params.seed);
  auto directory = chirper::make_directory(graph);
  auto zipf = std::make_shared<ZipfGenerator>(params.users, 0.95);

  chirper::WorkloadMix mix;
  mix.timeline_fraction = params.timeline_fraction;
  mix.celebrity = params.users;  // a brand-new user
  mix.celebrity_start = celebrity_start;
  mix.follow_celebrity_prob = 0.03;
  const std::uint32_t clients = partitions * params.clients_per_partition;
  for (std::uint32_t c = 0; c < clients; ++c) {
    system.add_client(
        std::make_unique<chirper::ChirperDriver>(directory, mix, zipf));
  }
  system.add_client(std::make_unique<chirper::CelebrityDriver>(
      directory, params.users, celebrity_start, milliseconds(20)));

  if (mode == core::ExecutionMode::kDynaStar) {
    // Give the celebrity shift time to show in the workload graph, then
    // request the re-adaptation explicitly (the paper's oracle accepts
    // application-requested repartitions, §4.2.2); the hint threshold may
    // also fire on its own earlier.
    const SimTime readapt = celebrity_start + seconds(
        static_cast<std::int64_t>(duration / 5));
    system.run_until(readapt);
    system.oracle(0).request_repartition();
    system.oracle(1).request_repartition();
  }
  system.run_until(seconds(static_cast<std::int64_t>(duration)));

  std::printf("--- Figure 6(%s): celebrity appears at t=%llds ---\n", label,
              static_cast<long long>(celebrity_start / seconds(1)));
  std::printf("%4s %12s %10s %12s\n", "t(s)", "tput(cps)", "mpart%",
              "objects_exch");
  const auto& completed = system.metrics().series("completed");
  const auto& executed = system.metrics().series("executed");
  const auto& mpart = system.metrics().series("mpart");
  const auto& exchanged = system.metrics().series("objects_exchanged");
  for (std::size_t t = 0; t < duration; ++t) {
    const double exec = executed.at(t);
    std::printf("%4zu %12.0f %9.1f%% %12.0f\n", t, completed.at(t),
                exec > 0 ? 100.0 * mpart.at(t) / exec : 0.0, exchanged.at(t));
  }
  std::printf("plans applied: %.0f (triggers: %.0f)\n\n",
              system.metrics().series("oracle.plans_applied").total(),
              system.metrics().series("oracle.repartitions").total());
}

}  // namespace

int main() {
  std::printf("=== Figure 6: dynamic workload (evolving social network) ===\n\n");
  run(core::ExecutionMode::kDynaStar, "a: DynaStar, random start");
  run(core::ExecutionMode::kSSMR, "b: S-SMR*, optimized start, no adaptation");
  std::printf(
      "Reading guide (vs paper Fig. 6): DynaStar starts below S-SMR* (random\n"
      "vs optimized placement), overtakes it after its first plan; when the\n"
      "celebrity changes the graph both degrade, but only DynaStar recovers\n"
      "with a new plan.\n");
  return 0;
}
