// Shared Chirper setup for the social-network benches (Figs. 4-6, 8,
// Table 1): builds a system + drivers over the Higgs-substitute graph.
#pragma once

#include <memory>

#include "baselines/registry.h"
#include "bench/bench_common.h"
#include "core/scenario.h"
#include "workloads/chirper.h"
#include "workloads/social_graph.h"

namespace dynastar::bench {

namespace chirper = workloads::chirper;

struct ChirperSetup {
  std::unique_ptr<core::System> system;
  chirper::Directory directory;
  std::shared_ptr<const ZipfGenerator> zipf;
  workloads::SocialGraph graph;
};

struct ChirperParams {
  std::uint32_t users = full_mode() ? 20'000 : 2'500;
  std::uint32_t edges_per_user = 4;
  double timeline_fraction = 0.85;  // 1.0 = timeline-only workload
  std::uint32_t clients_per_partition = 10;
  std::uint64_t seed = 21;
};

inline ChirperSetup make_chirper(core::SystemConfig config,
                                 chirper::Placement placement,
                                 const ChirperParams& params,
                                 std::uint32_t extra_clients_total = 0) {
  ChirperSetup setup;
  setup.graph = workloads::generate_social_graph(
      params.users, params.edges_per_user, params.seed);
  setup.directory = chirper::make_directory(setup.graph);
  setup.zipf = std::make_shared<ZipfGenerator>(params.users, 0.95);

  chirper::WorkloadMix mix;
  mix.timeline_fraction = params.timeline_fraction;
  const std::uint32_t clients =
      config.num_partitions * params.clients_per_partition +
      extra_clients_total;
  setup.system =
      core::ScenarioBuilder()
          .config(std::move(config))
          .app(chirper::chirper_app_factory())
          .preload([&](core::System& system) {
            chirper::setup(system, setup.graph, placement, params.seed);
          })
          .clients(clients,
                   [&](std::size_t) {
                     return std::make_unique<chirper::ChirperDriver>(
                         setup.directory, mix, setup.zipf);
                   })
          .build();
  return setup;
}

}  // namespace dynastar::bench
