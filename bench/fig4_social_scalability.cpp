// Figure 4: Chirper throughput and latency vs number of partitions, for the
// timeline-only and mix (85% timeline / 15% post) workloads, DynaStar vs
// S-SMR*. The social graph is fixed while partitions increase (unlike
// TPC-C), so edge-cuts grow with the partition count.
//
// Peak throughput comes from a saturated run; latency (avg + p95) from a
// second run at reduced client count (~75% of peak, as in the paper).
//
// Shape to check: timeline-only scales near-linearly for both systems; the
// mix workload scales up to ~8 partitions and then flattens (more edge
// cuts -> more multi-partition posts); S-SMR* has somewhat lower latency
// (DynaStar pays the variable-return trips).
#include <cstdio>
#include <vector>

#include "bench/chirper_common.h"

using namespace dynastar;
using bench::ChirperParams;

namespace {

struct Row {
  double peak_tput;
  double lat_avg_ms;
  double lat_p95_ms;
};

Row run(core::ExecutionMode mode, std::uint32_t partitions,
        double timeline_fraction) {
  const auto placement = mode == core::ExecutionMode::kSSMR
                             ? bench::chirper::Placement::kOptimized
                             : bench::chirper::Placement::kOptimized;
  auto make_config = [&] {
    auto config = mode == core::ExecutionMode::kDynaStar
                      ? baselines::config_for("dynastar", partitions)
                      : baselines::config_for("ssmr", partitions);
    // Measure DynaStar's converged steady state (no plan churn mid-window).
    config.repartition_hint_threshold = 1'000'000'000;
    return config;
  };

  ChirperParams params;
  params.timeline_fraction = timeline_fraction;

  Row row{};
  {
    auto setup = bench::make_chirper(make_config(), placement, params);
    const auto m = bench::measure(*setup.system, 1, 3);
    row.peak_tput = m.throughput;
  }
  {
    ChirperParams light = params;
    light.clients_per_partition =
        std::max<std::uint32_t>(1, params.clients_per_partition * 2 / 5);
    auto setup = bench::make_chirper(make_config(), placement, light);
    const auto m = bench::measure(*setup.system, 1, 3);
    row.lat_avg_ms = m.latency_avg_ms;
    row.lat_p95_ms = m.latency_p95_ms;
  }
  return row;
}

}  // namespace

int main() {
  std::vector<std::uint32_t> sweep{1, 2, 4, 8};
  if (bench::full_mode()) sweep.push_back(16);

  for (double timeline_fraction : {1.0, 0.85}) {
    std::printf("=== Figure 4 (%s workload): kcps and latency @~75%% load ===\n",
                timeline_fraction == 1.0 ? "timeline-only" : "mix 85/15");
    std::printf("%10s | %10s %8s %8s | %10s %8s %8s\n", "partitions",
                "Dyna kcps", "avg ms", "p95 ms", "SSMR kcps", "avg ms",
                "p95 ms");
    for (std::uint32_t k : sweep) {
      const Row dyna = run(core::ExecutionMode::kDynaStar, k, timeline_fraction);
      const Row ssmr = run(core::ExecutionMode::kSSMR, k, timeline_fraction);
      std::printf("%10u | %10.1f %8.2f %8.2f | %10.1f %8.2f %8.2f\n", k,
                  dyna.peak_tput / 1000.0, dyna.lat_avg_ms, dyna.lat_p95_ms,
                  ssmr.peak_tput / 1000.0, ssmr.lat_avg_ms, ssmr.lat_p95_ms);
    }
    std::printf("\n");
  }
  std::printf(
      "Reading guide (vs paper Fig. 4): timeline-only scales with partitions\n"
      "for both systems; under the mix workload scaling flattens at higher\n"
      "partition counts as edge cuts grow; S-SMR* shows lower latency since\n"
      "DynaStar returns borrowed variables after execution.\n");
  return 0;
}
