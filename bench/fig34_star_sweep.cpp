// STAR vs DynaStar multi-partition-ratio sweep (companion to the paper's
// Figs. 3/4 scalability studies, extended with the STAR baseline).
//
// Both systems run the same uniform KV workload — identical keyspace, client
// population, seed, and network/CPU parameters via the baseline registry —
// while the fraction of commands touching two random keys sweeps from 0% to
// 90%. Uniform random key pairs defeat DynaStar's workload-graph
// repartitioning on purpose: the sweep isolates the *execution* trade the
// two designs make on irreducibly multi-partition work.
//
// Expected shape (gated by scripts/check_report.py --bench):
//   - low multi ratio: DynaStar wins — STAR funnels every command through
//     the master partition's replicas (full replica, sequenced in every
//     multicast), so its singles throughput is capped by one partition.
//   - high multi ratio: STAR wins — deferred master epochs execute
//     multi-partition batches locally while DynaStar stalls owner pumps on
//     borrow/return round-trips per command.
//
// Usage: fig34_star_sweep [output.json]   (default BENCH_star.json)
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/registry.h"
#include "common/json.h"
#include "common/metric_names.h"
#include "core/scenario.h"
#include "core/system.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"

namespace dynastar {
namespace {

constexpr std::uint32_t kPartitions = 4;
constexpr std::uint64_t kKeys = 256;
constexpr std::size_t kClients = 32;
constexpr std::uint64_t kSeed = 7;
constexpr std::int64_t kWarmupS = 2;
constexpr std::int64_t kDurationS = 10;

const double kMultiFractions[] = {0.0, 0.05, 0.2, 0.5, 0.9};

/// Counts kOk completions inside the measurement window; `completed` alone
/// would also count kTimeout / kOverloaded completions.
class OkCounter final : public core::ClientDriver {
 public:
  OkCounter(std::unique_ptr<core::ClientDriver> inner, std::uint64_t* oks)
      : inner_(std::move(inner)), oks_(oks) {}

  std::optional<core::CommandSpec> next(Rng& rng, SimTime now) override {
    return inner_->next(rng, now);
  }

  void on_result(const core::CommandSpec& spec, core::ReplyStatus status,
                 const sim::MessagePtr& payload, SimTime issued_at,
                 SimTime completed_at) override {
    if (status == core::ReplyStatus::kOk && completed_at >= seconds(kWarmupS))
      ++*oks_;
    inner_->on_result(spec, status, payload, issued_at, completed_at);
  }

 private:
  std::unique_ptr<core::ClientDriver> inner_;
  std::uint64_t* oks_;
};

struct Point {
  std::uint64_t ok_commands = 0;
  double star_epochs = 0;
  double star_deferred = 0;

  [[nodiscard]] double tps() const {
    return static_cast<double>(ok_commands) / (kDurationS - kWarmupS);
  }
};

Point run_point(const char* system_name, double multi_fraction) {
  Point point;
  auto system =
      core::ScenarioBuilder()
          .config(baselines::config_for(system_name, kPartitions, kSeed))
          .app(workloads::kv_app_factory())
          .preload_kv(kKeys, workloads::KvObject(0))
          .clients(kClients,
                   [&point, multi_fraction](std::size_t) {
                     return std::make_unique<OkCounter>(
                         std::make_unique<workloads::RandomKvDriver>(
                             kKeys, 0.5, multi_fraction),
                         &point.ok_commands);
                   })
          .build();
  system->run_until(seconds(kDurationS));
  point.star_epochs = system->metrics().counter(metric::kStarEpochs);
  point.star_deferred = system->metrics().counter(metric::kStarDeferred);
  return point;
}

}  // namespace
}  // namespace dynastar

int main(int argc, char** argv) {
  using namespace dynastar;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_star.json";

  Json sweep = Json::Array{};
  std::printf("fig34_star_sweep: %u partitions, %llu keys, %zu clients, "
              "[%llds, %llds) window\n",
              kPartitions, static_cast<unsigned long long>(kKeys), kClients,
              static_cast<long long>(kWarmupS),
              static_cast<long long>(kDurationS));
  for (double multi : kMultiFractions) {
    const Point dynastar_point = run_point("dynastar", multi);
    const Point star_point = run_point("star", multi);
    std::printf("  multi=%.2f  dynastar %8.1f/s   star %8.1f/s   "
                "(epochs %.0f, deferred %.0f)\n",
                multi, dynastar_point.tps(), star_point.tps(),
                star_point.star_epochs, star_point.star_deferred);
    sweep.as_array().push_back(Json::Object{
        {"multi_fraction", multi},
        {"dynastar", Json::Object{{"ok_commands", dynastar_point.ok_commands},
                                  {"tps", dynastar_point.tps()}}},
        {"star", Json::Object{{"ok_commands", star_point.ok_commands},
                              {"tps", star_point.tps()},
                              {"epochs", star_point.star_epochs},
                              {"deferred", star_point.star_deferred}}},
    });
  }

  Json report = Json::Object{};
  report["schema"] = "dynastar-bench-star-v1";
  report["config"] = Json::Object{
      {"partitions", static_cast<std::uint64_t>(kPartitions)},
      {"keys", kKeys},
      {"clients", static_cast<std::uint64_t>(kClients)},
      {"warmup_s", kWarmupS},
      {"duration_s", kDurationS},
      {"seed", kSeed},
  };
  report["sweep"] = std::move(sweep);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  const std::string text = report.dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
