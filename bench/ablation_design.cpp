// Ablation of DynaStar's design choices (DESIGN.md §5):
//   1. eager vs on-demand plan transfer (Algorithm 3 Task 3 vs §7),
//   2. strict vs relaxed epoch validation (full cache invalidation vs
//      addressing-only checks),
//   3. client location cache on vs off (every command through the oracle).
// Each variant runs the Chirper mix workload across a repartition so the
// affected machinery is actually exercised.
#include <cstdio>

#include "bench/chirper_common.h"

using namespace dynastar;

namespace {

struct Variant {
  const char* name;
  bool eager;
  bool strict;
  std::uint64_t threshold;  // hint threshold (plan fires mid-run)
};

void run(const Variant& variant) {
  auto config = baselines::config_for("dynastar", 4);
  config.eager_plan_transfer = variant.eager;
  config.strict_epoch_validation = variant.strict;
  config.repartition_hint_threshold = variant.threshold;

  bench::ChirperParams params;
  params.clients_per_partition = 10;
  auto setup = bench::make_chirper(config, bench::chirper::Placement::kRandom,
                                   params);
  const std::size_t duration = 40;
  setup.system->run_until(seconds(duration));

  auto& metrics = setup.system->metrics();
  const double completed = bench::window_total(
      metrics.series("completed"), 0, duration);
  const double late_tput =
      bench::window_rate(metrics.series("completed"), duration - 10, duration);
  const double retries = metrics.series("client.retries").total();
  const double exchanged = metrics.series("objects_exchanged").total();
  const double plans = metrics.series("oracle.plans_applied").total();
  const auto* latency = metrics.find_histogram("latency");
  std::printf("%-28s %10.0f %12.0f %9.0f %12.0f %6.0f %9.2f\n", variant.name,
              completed, late_tput, retries, exchanged, plans,
              latency ? to_millis(latency->percentile(0.95)) : 0.0);
}

}  // namespace

int main() {
  std::printf("=== Ablation: DynaStar design choices (Chirper mix, 4 partitions,\n"
              "    random start, repartition mid-run) ===\n");
  std::printf("%-28s %10s %12s %9s %12s %6s %9s\n", "variant", "completed",
              "tail tput/s", "retries", "objs_moved", "plans", "p95 ms");
  run({"eager + strict (paper)", true, true, 60'000});
  run({"on-demand transfer", false, true, 60'000});
  run({"relaxed validation", true, false, 60'000});
  run({"no repartitioning", true, true, UINT64_MAX});
  std::printf(
      "\nReading guide: eager+strict is the paper's configuration. On-demand\n"
      "spreads the move cost over time (fewer objects moved at the plan,\n"
      "slightly slower convergence). Relaxed validation avoids most retries\n"
      "after a plan. Without repartitioning, throughput stays at the random-\n"
      "placement floor — the core claim of the paper.\n");
  return 0;
}
