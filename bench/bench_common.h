// Shared helpers for the figure/table reproduction binaries.
//
// Conventions:
//  * Every binary prints the series/rows of one paper artifact, then a short
//    reading guide relating the output to the paper's claim.
//  * Default scales finish in tens of seconds on one core; set
//    DYNASTAR_BENCH_FULL=1 for paper-sized sweeps.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/metric_names.h"
#include "common/metrics.h"
#include "core/system.h"

namespace dynastar::bench {

inline bool full_mode() {
  const char* env = std::getenv("DYNASTAR_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* env = std::getenv(name);
  return env == nullptr ? fallback : std::strtoull(env, nullptr, 10);
}

/// Sum of a series over simulated-seconds [from, to).
inline double window_total(const TimeSeries& series, std::size_t from,
                           std::size_t to) {
  double total = 0;
  for (std::size_t b = from; b < to && b < series.num_buckets(); ++b)
    total += series.at(b);
  return total;
}

/// Average per-second rate over [from, to).
inline double window_rate(const TimeSeries& series, std::size_t from,
                          std::size_t to) {
  if (to <= from) return 0;
  return window_total(series, from, to) / static_cast<double>(to - from);
}

/// Peak 1-second bucket in [from, to).
inline double window_peak(const TimeSeries& series, std::size_t from,
                          std::size_t to) {
  double peak = 0;
  for (std::size_t b = from; b < to && b < series.num_buckets(); ++b)
    peak = std::max(peak, series.at(b));
  return peak;
}

/// Prints one time series as "t value" rows (bucket = 1 simulated second).
inline void print_series(const char* label, const TimeSeries& series,
                         std::size_t seconds) {
  std::printf("# %s (per simulated second)\n", label);
  for (std::size_t b = 0; b < seconds; ++b)
    std::printf("%3zu  %.0f\n", b, series.at(b));
}

struct Measured {
  double throughput = 0;     // avg cmds / sim-second over the window
  double peak = 0;           // best 1s bucket
  double latency_avg_ms = 0;
  double latency_p95_ms = 0;
  double mpart_fraction = 0;
};

/// Steady-state measurement over [warmup, warmup+measure) sim-seconds.
inline Measured measure(core::System& system, std::size_t warmup_s,
                        std::size_t measure_s) {
  system.run_until(seconds(static_cast<std::int64_t>(warmup_s + measure_s)));
  Measured m;
  const auto& completed = system.metrics().series(metric::kCompleted);
  m.throughput = window_rate(completed, warmup_s, warmup_s + measure_s);
  m.peak = window_peak(completed, warmup_s, warmup_s + measure_s);
  if (const auto* latency = system.metrics().find_histogram(metric::kLatency)) {
    m.latency_avg_ms = to_millis(static_cast<SimTime>(latency->mean()));
    m.latency_p95_ms = to_millis(latency->percentile(0.95));
  }
  const auto& executed = system.metrics().series(metric::kExecuted);
  const auto& mpart = system.metrics().series(metric::kMultiPartition);
  const double exec_total = window_total(executed, warmup_s, warmup_s + measure_s);
  if (exec_total > 0)
    m.mpart_fraction =
        window_total(mpart, warmup_s, warmup_s + measure_s) / exec_total;
  return m;
}

}  // namespace dynastar::bench
