// Microbenchmarks of the substrate (google-benchmark): simulator event
// throughput, Paxos ordering cost, single- vs multi-group atomic multicast,
// and the partitioner's phases. Not a paper figure; quantifies the stack
// the figures are built on.
#include <benchmark/benchmark.h>

#include "common/metric_names.h"
#include "common/report.h"
#include "core/scenario.h"
#include "multicast/client.h"
#include "partitioning/partitioner.h"
#include "sim/process.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"
#include "workloads/social_graph.h"

namespace dynastar {
namespace {

void BM_SimulatorEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t counter = 0;
    for (int i = 0; i < 10'000; ++i) {
      simulator.schedule_after(i, [&counter] { ++counter; });
    }
    simulator.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorEventLoop);

/// Shared full-stack KV scenario: `multi_fraction` of commands touch a
/// second key, which lands cross-partition when `partitions` > 1. Tracing
/// is armed so the bench can report where command time went.
core::ScenarioBuilder kv_scenario(std::uint32_t partitions,
                                  double multi_fraction) {
  return core::ScenarioBuilder()
      .partitions(partitions)
      .tune([](core::SystemConfig& c) {
        c.repartition_hint_threshold = UINT64_MAX;
      })
      .app(workloads::kv_app_factory())
      .preload_kv(16, workloads::KvObject())
      .clients(4,
               [multi_fraction](std::size_t) {
                 return std::make_unique<workloads::RandomKvDriver>(
                     16, 0.5, multi_fraction);
               })
      .trace();
}

/// Publishes the last run's per-phase latency means as bench counters.
void report_phases(benchmark::State& state, const PhaseBreakdown& breakdown) {
  for (const auto& phase : breakdown.phases)
    state.counters["us_" + phase.name] = phase.mean_ns() / 1e3;
  state.counters["us_e2e"] = breakdown.e2e_mean_ns() / 1e3;
}

/// Full-stack KV commands per simulated run, single partition (pure Paxos
/// ordering path, no cross-partition traffic).
void BM_SinglePartitionCommands(benchmark::State& state) {
  PhaseBreakdown breakdown;
  for (auto _ : state) {
    auto system = kv_scenario(1, 0.0).build();
    system->run_until(seconds(1));
    benchmark::DoNotOptimize(
        system->metrics().series(metric::kCompleted).total());
    breakdown = compute_phase_breakdown(system->world().trace());
  }
  report_phases(state, breakdown);
}
BENCHMARK(BM_SinglePartitionCommands)->Unit(benchmark::kMillisecond);

/// Same load but 50% of commands span two partitions: measures the borrow /
/// return overhead of the multicast + transfer machinery.
void BM_CrossPartitionCommands(benchmark::State& state) {
  PhaseBreakdown breakdown;
  for (auto _ : state) {
    auto system = kv_scenario(2, 0.5).build();
    system->run_until(seconds(1));
    benchmark::DoNotOptimize(
        system->metrics().series(metric::kCompleted).total());
    breakdown = compute_phase_breakdown(system->world().trace());
  }
  report_phases(state, breakdown);
}
BENCHMARK(BM_CrossPartitionCommands)->Unit(benchmark::kMillisecond);

void BM_PartitionGraph(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto social = workloads::generate_social_graph(n, 4, 3);
  partitioning::GraphBuilder builder(n);
  for (std::uint32_t u = 0; u < n; ++u)
    for (std::uint32_t f : social.followers[u]) builder.add_edge(u, f, 1);
  auto graph = builder.build();
  for (auto _ : state) {
    partitioning::PartitionerConfig config;
    config.seed = 3;
    auto result = partitioning::partition_graph(graph, 8, config);
    benchmark::DoNotOptimize(result.edge_cut);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PartitionGraph)->Arg(10'000)->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dynastar

BENCHMARK_MAIN();
