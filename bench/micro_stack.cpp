// Microbenchmarks of the substrate (google-benchmark): simulator event
// throughput, Paxos ordering cost, single- vs multi-group atomic multicast,
// and the partitioner's phases. Not a paper figure; quantifies the stack
// the figures are built on.
#include <benchmark/benchmark.h>

#include "core/system.h"
#include "multicast/client.h"
#include "partitioning/partitioner.h"
#include "sim/process.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"
#include "workloads/social_graph.h"

namespace dynastar {
namespace {

void BM_SimulatorEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t counter = 0;
    for (int i = 0; i < 10'000; ++i) {
      simulator.schedule_after(i, [&counter] { ++counter; });
    }
    simulator.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SimulatorEventLoop);

/// Full-stack KV commands per simulated run, single partition (pure Paxos
/// ordering path, no cross-partition traffic).
void BM_SinglePartitionCommands(benchmark::State& state) {
  for (auto _ : state) {
    core::SystemConfig config;
    config.num_partitions = 1;
    config.repartition_hint_threshold = UINT64_MAX;
    core::System system(config, workloads::kv_app_factory());
    core::Assignment assignment;
    workloads::KvObject zero;
    for (std::uint64_t k = 0; k < 16; ++k) {
      assignment[core::VertexId{k}] = PartitionId{0};
      system.preload_object(ObjectId{k}, core::VertexId{k}, PartitionId{0},
                            zero);
    }
    system.preload_assignment(assignment);
    for (int c = 0; c < 4; ++c) {
      system.add_client(
          std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.0));
    }
    system.run_until(seconds(1));
    benchmark::DoNotOptimize(system.metrics().series("completed").total());
  }
}
BENCHMARK(BM_SinglePartitionCommands)->Unit(benchmark::kMillisecond);

/// Same load but 50% of commands span two partitions: measures the borrow /
/// return overhead of the multicast + transfer machinery.
void BM_CrossPartitionCommands(benchmark::State& state) {
  for (auto _ : state) {
    core::SystemConfig config;
    config.num_partitions = 2;
    config.repartition_hint_threshold = UINT64_MAX;
    core::System system(config, workloads::kv_app_factory());
    core::Assignment assignment;
    workloads::KvObject zero;
    for (std::uint64_t k = 0; k < 16; ++k) {
      assignment[core::VertexId{k}] = PartitionId{k % 2};
      system.preload_object(ObjectId{k}, core::VertexId{k}, PartitionId{k % 2},
                            zero);
    }
    system.preload_assignment(assignment);
    for (int c = 0; c < 4; ++c) {
      system.add_client(
          std::make_unique<workloads::RandomKvDriver>(16, 0.5, 0.5));
    }
    system.run_until(seconds(1));
    benchmark::DoNotOptimize(system.metrics().series("completed").total());
  }
}
BENCHMARK(BM_CrossPartitionCommands)->Unit(benchmark::kMillisecond);

void BM_PartitionGraph(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  auto social = workloads::generate_social_graph(n, 4, 3);
  partitioning::GraphBuilder builder(n);
  for (std::uint32_t u = 0; u < n; ++u)
    for (std::uint32_t f : social.followers[u]) builder.add_edge(u, f, 1);
  auto graph = builder.build();
  for (auto _ : state) {
    partitioning::PartitionerConfig config;
    config.seed = 3;
    auto result = partitioning::partition_graph(graph, 8, config);
    benchmark::DoNotOptimize(result.edge_cut);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PartitionGraph)->Arg(10'000)->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dynastar

BENCHMARK_MAIN();
