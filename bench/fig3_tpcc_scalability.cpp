// Figure 3: TPC-C peak throughput vs number of partitions, DynaStar vs
// S-SMR*. One warehouse per partition (the state grows with the system, as
// in the paper), enough closed-loop clients to saturate.
//
// Both systems are measured from the optimized placement (S-SMR* starts
// there by construction; DynaStar converges to it — Fig. 2 — so this is its
// steady state; repartitioning stays enabled but does not fire during the
// short window). Shape to check: both scale near-linearly, DynaStar at or
// slightly above S-SMR* (it executes multi-partition commands once instead
// of at every involved partition).
#include <cstdio>
#include <vector>

#include "baselines/registry.h"
#include "bench/bench_common.h"
#include "workloads/tpcc.h"

using namespace dynastar;
namespace tpcc = workloads::tpcc;

namespace {

bench::Measured run(core::ExecutionMode mode, std::uint32_t partitions) {
  auto config = mode == core::ExecutionMode::kDynaStar
                    ? baselines::config_for("dynastar", partitions)
                    : baselines::config_for("ssmr", partitions);
  tpcc::Scale scale;
  core::System system(config, tpcc::tpcc_app_factory(scale));
  tpcc::setup(system, scale, partitions,
              tpcc::Placement::kWarehousePerPartition);
  const std::uint32_t clients =
      partitions * static_cast<std::uint32_t>(
                       bench::env_u64("DYNASTAR_FIG3_CLIENTS_PER_PART", 16));
  for (std::uint32_t c = 0; c < clients; ++c) {
    system.add_client(std::make_unique<tpcc::TpccDriver>(
        scale, partitions, c % partitions + 1, c / partitions % 10 + 1));
  }
  return bench::measure(system, /*warmup_s=*/2, /*measure_s=*/5);
}

}  // namespace

int main() {
  std::vector<std::uint32_t> sweep{1, 2, 4, 8};
  if (bench::full_mode()) sweep.push_back(16);

  std::printf("=== Figure 3: TPC-C scalability (peak throughput, tps) ===\n");
  std::printf("%10s %14s %14s %10s\n", "partitions", "DynaStar", "S-SMR*",
              "ratio");
  for (std::uint32_t k : sweep) {
    const auto dyna = run(core::ExecutionMode::kDynaStar, k);
    const auto ssmr = run(core::ExecutionMode::kSSMR, k);
    std::printf("%10u %14.0f %14.0f %9.2fx\n", k, dyna.throughput,
                ssmr.throughput,
                ssmr.throughput > 0 ? dyna.throughput / ssmr.throughput : 0.0);
  }
  std::printf(
      "\nReading guide (vs paper Fig. 3): throughput grows with the number of\n"
      "partitions for both systems (state grows too: one warehouse per\n"
      "partition); DynaStar rivals the manually optimized S-SMR*.\n");
  return 0;
}
