// Figure 7: partitioner (our METIS substitute) CPU time and memory vs graph
// size. The paper shows METIS scaling linearly in time and memory up to 10M
// vertices; this measures real (wall-clock) time and the resident graph +
// partitioner footprint on synthetic power-law graphs.
//
// Default sweep tops out at 1M vertices (single-core CI budget); set
// DYNASTAR_BENCH_FULL=1 for the 10M-vertex point.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "partitioning/graph.h"
#include "partitioning/partitioner.h"
#include "workloads/social_graph.h"

using namespace dynastar;

namespace {

partitioning::Graph build_graph(std::uint32_t vertices) {
  auto social = workloads::generate_social_graph(vertices, 4, 17);
  partitioning::GraphBuilder builder(vertices);
  for (std::uint32_t u = 0; u < vertices; ++u) {
    for (std::uint32_t f : social.followers[u]) builder.add_edge(u, f, 1);
  }
  return builder.build();
}

std::size_t graph_bytes(const partitioning::Graph& graph) {
  return graph.vertex_weights.size() * sizeof(std::int64_t) +
         graph.xadj.size() * sizeof(std::size_t) +
         graph.adjacency.size() * sizeof(std::uint32_t) +
         graph.edge_weights.size() * sizeof(std::int64_t);
}

}  // namespace

int main() {
  std::vector<std::uint32_t> sweep{10'000, 50'000, 100'000, 500'000, 1'000'000};
  if (bench::full_mode()) {
    sweep.push_back(5'000'000);
    sweep.push_back(10'000'000);
  }

  std::printf("=== Figure 7: partitioner CPU time and memory vs graph size ===\n");
  std::printf("%12s %12s %12s %12s %10s %10s\n", "vertices", "edges",
              "time(s)", "memory(MB)", "edge-cut%", "imbalance");
  for (std::uint32_t n : sweep) {
    auto graph = build_graph(n);
    partitioning::PartitionerConfig config;
    config.seed = 3;
    const auto start = std::chrono::steady_clock::now();
    auto result = partitioning::partition_graph(graph, 8, config);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::int64_t total_weight = 0;
    for (auto w : graph.edge_weights) total_weight += w;
    total_weight /= 2;
    std::printf("%12u %12zu %12.2f %12.1f %9.1f%% %10.3f\n", n,
                graph.num_edges(), elapsed,
                static_cast<double>(graph_bytes(graph)) / 1e6,
                total_weight > 0
                    ? 100.0 * static_cast<double>(result.edge_cut) /
                          static_cast<double>(total_weight)
                    : 0.0,
                result.achieved_imbalance);
  }
  std::printf(
      "\nReading guide (vs paper Fig. 7): both time and memory grow linearly\n"
      "with graph size — the oracle can repartition graphs with millions of\n"
      "vertices in seconds, so plan computation never bottlenecks DynaStar.\n");
  return 0;
}
