// Figure 5: CDF of command latency for the mix workload (85% timeline /
// 15% post) on different partition counts, DynaStar vs S-SMR*.
//
// Shape to check: S-SMR* sits left of (below) DynaStar for ~80% of the
// distribution — DynaStar's multi-partition commands pay the extra
// variable-return round trip — while both tails stretch with partition
// count.
// A second entry point, `fig5_latency_cdf --bench-lease [out.json]`, reuses
// the latency-CDF machinery for the read-lease gate: the same seeded KV
// workload runs leases-off then leases-on and the multi-partition read-only
// median must drop by >= 20% while the single-partition median stays within
// 2% (scripts/check_report.py --lease enforces both on the emitted JSON).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/chirper_common.h"
#include "common/json.h"
#include "common/metric_names.h"
#include "workloads/kv_drivers.h"

using namespace dynastar;

namespace {

std::vector<Histogram::CdfPoint> run_cdf(core::ExecutionMode mode,
                                         std::uint32_t partitions) {
  auto config = mode == core::ExecutionMode::kDynaStar
                    ? baselines::config_for("dynastar", partitions)
                    : baselines::config_for("ssmr", partitions);
  config.repartition_hint_threshold = 1'000'000'000;
  bench::ChirperParams params;
  params.clients_per_partition = 7;  // ~75% of saturation
  auto setup = bench::make_chirper(config, bench::chirper::Placement::kOptimized,
                                   params);
  setup.system->run_until(seconds(4));
  const auto* latency = setup.system->metrics().find_histogram("latency");
  return latency ? latency->cdf() : std::vector<Histogram::CdfPoint>{};
}

void print_cdf(const char* label,
               const std::vector<Histogram::CdfPoint>& cdf) {
  std::printf("# %s: latency_ms cumulative_fraction (decile samples)\n", label);
  double next = 0.1;
  for (const auto& point : cdf) {
    if (point.fraction + 1e-12 < next) continue;
    while (next <= point.fraction + 1e-12) {
      std::printf("  %8.3f  %.2f\n", to_millis(point.value), next);
      next += 0.1;
    }
    if (next > 0.999) break;
  }
}

// ---------------------------------------------------------------------------
// --bench-lease: leases-off vs leases-on latency on a read-heavy KV mix.

constexpr std::uint32_t kLeasePartitions = 4;
constexpr std::size_t kLeaseClients = 12;
// Keys k map to partition k % 4 (the static preload plan). The shared
// read-mostly region lives on partitions 0 and 1 (kSharedSlots keys on
// each); every client also owns one private key on partition 2 or 3, so the
// single-partition population shares no server group with the leased one
// and the gate isolates the lease effect from load coupling.
constexpr std::uint64_t kSharedSlots = 1;
constexpr std::uint64_t kLeaseKeys = 4 * kLeaseClients;
constexpr std::uint64_t kLeaseSeed = 7;
constexpr double kLeaseMultiFraction = 0.8;
constexpr double kSharedWriteFraction = 0.04;
constexpr double kPrivateWriteFraction = 0.2;
constexpr std::int64_t kLeaseWarmupS = 1;
constexpr std::int64_t kLeaseHorizonS = 6;

struct OpSample {
  bool multi = false;
  bool read_only = false;
  double ms = 0.0;
};

/// Wraps a driver and records, per kOk completion after warmup, whether the
/// command spanned partitions, whether it was read-only, and its latency.
/// Pure observation: `next` forwards untouched, so the command sequence is
/// identical leases-off and leases-on (same seed, no chaos).
class LeaseProbeDriver final : public core::ClientDriver {
 public:
  LeaseProbeDriver(std::unique_ptr<core::ClientDriver> inner,
                   std::vector<OpSample>* sink)
      : inner_(std::move(inner)), sink_(sink) {}

  std::optional<core::CommandSpec> next(Rng& rng, SimTime now) override {
    return inner_->next(rng, now);
  }

  void on_result(const core::CommandSpec& spec, core::ReplyStatus status,
                 const sim::MessagePtr& payload, SimTime issued_at,
                 SimTime completed_at) override {
    inner_->on_result(spec, status, payload, issued_at, completed_at);
    if (status != core::ReplyStatus::kOk) return;
    if (issued_at < seconds(kLeaseWarmupS)) return;
    // The plan is static (repartitioning off), so vertex -> partition is the
    // preload layout: key % partitions.
    bool seen[kLeasePartitions] = {};
    std::uint32_t distinct = 0;
    for (const auto& [object, vertex] : spec.objects) {
      bool& slot = seen[vertex.value() % kLeasePartitions];
      if (!slot) ++distinct;
      slot = true;
    }
    sink_->push_back(
        {distinct > 1, spec.read_only, to_millis(completed_at - issued_at)});
  }

 private:
  std::unique_ptr<core::ClientDriver> inner_;
  std::vector<OpSample>* sink_;
};

/// The lease workload proper:
///   * multi-partition ops (kLeaseMultiFraction): one shared key on
///     partition 0 plus one on partition 1, issued back-to-back so the hot
///     pair actually contends — read-only except a kSharedWriteFraction
///     sliver of puts that exercises revocation;
///   * single-partition ops otherwise: the client's private key on
///     partition 2 or 3, kPrivateWriteFraction puts, followed by a 3 ms
///     think pause so partitions 2/3 stay uncongested and the single
///     population measures fixed costs, not load coupling.
/// All randomness comes from the per-client RNG handed to next(), so the
/// leases-off and leases-on runs issue identical command sequences.
class LeaseMixDriver final : public core::ClientDriver {
 public:
  explicit LeaseMixDriver(std::uint64_t private_key)
      : private_key_(private_key) {}

  std::optional<core::CommandSpec> next(Rng& rng, SimTime /*now*/) override {
    if (pause_next_ != 0) {
      const SimTime pause = pause_next_;
      pause_next_ = 0;
      return core::CommandSpec::pause_for(pause);
    }
    core::CommandSpec spec;
    bool write = false;
    if (rng.chance(kLeaseMultiFraction)) {
      const std::uint64_t a = 4 * rng.uniform(0, kSharedSlots - 1);      // p0
      const std::uint64_t b = 4 * rng.uniform(0, kSharedSlots - 1) + 1;  // p1
      spec.objects.emplace_back(ObjectId{a}, core::VertexId{a});
      spec.objects.emplace_back(ObjectId{b}, core::VertexId{b});
      write = rng.chance(kSharedWriteFraction);
    } else {
      pause_next_ = milliseconds(3);
      spec.objects.emplace_back(ObjectId{private_key_},
                                core::VertexId{private_key_});
      write = rng.chance(kPrivateWriteFraction);
    }
    spec.payload = sim::make_message<workloads::KvOp>(
        write ? workloads::KvOp::Kind::kPut : workloads::KvOp::Kind::kGet,
        rng.uniform(0, 1u << 30));
    spec.read_only = !write;
    return spec;
  }

 private:
  std::uint64_t private_key_;
  SimTime pause_next_ = 0;
};

/// Private key for client `i`: partition 2 or 3, disjoint across clients.
constexpr std::uint64_t private_key_for(std::size_t i) {
  return 4 * static_cast<std::uint64_t>(i) + 2 + (i % 2);
}

struct LeaseRun {
  std::vector<OpSample> samples;
  double lease_reads = 0.0;
  double lease_fallbacks = 0.0;
  double ok_commands = 0.0;
};

LeaseRun run_lease(bool leases_on) {
  LeaseRun run;
  auto system =
      core::ScenarioBuilder()
          .execution_mode(core::ExecutionMode::kDynaStar)
          .partitions(kLeasePartitions)
          .seed(kLeaseSeed)
          .repartitioning(false)
          .read_leases(leases_on)
          .app(workloads::kv_app_factory())
          .preload_kv(kLeaseKeys, workloads::KvObject(0))
          .clients(kLeaseClients,
                   [&run](std::size_t i) {
                     return std::make_unique<LeaseProbeDriver>(
                         std::make_unique<LeaseMixDriver>(private_key_for(i)),
                         &run.samples);
                   })
          .build();
  system->run_until(seconds(kLeaseHorizonS));
  run.lease_reads = system->metrics().counter(metric::kServerLeaseReads);
  run.lease_fallbacks =
      system->metrics().counter(metric::kServerLeaseFallbacks);
  run.ok_commands = static_cast<double>(run.samples.size());
  return run;
}

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

Json decile_cdf(std::vector<double> values) {
  Json::Array cdf;
  if (values.empty()) return cdf;
  std::sort(values.begin(), values.end());
  for (int d = 1; d <= 10; ++d) {
    std::size_t idx = values.size() * d / 10;
    if (idx > 0) --idx;
    Json::Array point;
    point.reserve(2);
    point.emplace_back(static_cast<double>(d) / 10.0);
    point.emplace_back(values[idx]);
    cdf.emplace_back(std::move(point));
  }
  return cdf;
}

/// One run's samples split into the three gated populations:
/// multi-partition read-only (the leased path), single-partition (must not
/// move), multi-partition writes (still borrow/return).
struct LeaseSummary {
  double multi_ro_median = 0.0;
  double single_median = 0.0;
  Json json;
};

LeaseSummary summarize_lease(const LeaseRun& run) {
  std::vector<double> multi_ro;
  std::vector<double> single;
  std::vector<double> multi_write;
  for (const OpSample& s : run.samples) {
    if (!s.multi)
      single.push_back(s.ms);
    else if (s.read_only)
      multi_ro.push_back(s.ms);
    else
      multi_write.push_back(s.ms);
  }
  LeaseSummary out;
  out.multi_ro_median = median_of(multi_ro);
  out.single_median = median_of(single);
  Json section = Json::Object{};
  section["ok_commands"] = run.ok_commands;
  section["lease_reads"] = run.lease_reads;
  section["lease_fallbacks"] = run.lease_fallbacks;
  section["multi_ro"] = Json::Object{
      {"count", static_cast<std::uint64_t>(multi_ro.size())},
      {"median_ms", out.multi_ro_median},
      {"cdf", decile_cdf(multi_ro)},
  };
  section["single"] = Json::Object{
      {"count", static_cast<std::uint64_t>(single.size())},
      {"median_ms", out.single_median},
      {"cdf", decile_cdf(single)},
  };
  section["multi_write"] = Json::Object{
      {"count", static_cast<std::uint64_t>(multi_write.size())},
      {"median_ms", median_of(multi_write)},
  };
  out.json = std::move(section);
  return out;
}

int run_lease_bench(const char* out_arg) {
  const std::string out_path = out_arg != nullptr ? out_arg : "BENCH_lease.json";
  std::printf("=== Read-lease latency gate: DynaStar, %u partitions, "
              "%zu clients, %.0f%% multi (shared keys on p0+p1), "
              "private singles on p2/p3 ===\n",
              kLeasePartitions, kLeaseClients, kLeaseMultiFraction * 100);

  const LeaseRun off = run_lease(false);
  const LeaseRun on = run_lease(true);
  LeaseSummary off_summary = summarize_lease(off);
  LeaseSummary on_summary = summarize_lease(on);

  const double off_median = off_summary.multi_ro_median;
  const double on_median = on_summary.multi_ro_median;
  const double off_single = off_summary.single_median;
  const double on_single = on_summary.single_median;
  const double reduction =
      off_median > 0 ? 1.0 - on_median / off_median : 0.0;
  const double single_shift =
      off_single > 0 ? (on_single - off_single) / off_single : 0.0;

  std::printf("  multi-partition read-only median: %.3f ms -> %.3f ms "
              "(%.1f%% reduction)\n",
              off_median, on_median, reduction * 100);
  std::printf("  single-partition median         : %.3f ms -> %.3f ms "
              "(%+.2f%%)\n",
              off_single, on_single, single_shift * 100);
  std::printf("  leases-on: %.0f leased reads, %.0f fallbacks, %.0f ok "
              "commands measured\n",
              on.lease_reads, on.lease_fallbacks, on.ok_commands);

  Json report = Json::Object{};
  report["schema"] = "dynastar-bench-lease-v1";
  report["config"] = Json::Object{
      {"partitions", static_cast<std::uint64_t>(kLeasePartitions)},
      {"keys", kLeaseKeys},
      {"clients", static_cast<std::uint64_t>(kLeaseClients)},
      {"seed", kLeaseSeed},
      {"shared_keys", 2 * kSharedSlots},
      {"multi_fraction", kLeaseMultiFraction},
      {"shared_write_fraction", kSharedWriteFraction},
      {"private_write_fraction", kPrivateWriteFraction},
      {"warmup_s", kLeaseWarmupS},
      {"horizon_s", kLeaseHorizonS},
  };
  report["off"] = std::move(off_summary.json);
  report["on"] = std::move(on_summary.json);
  report["multi_ro_median_reduction"] = reduction;
  report["single_median_shift"] = single_shift;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  const std::string text = report.dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--bench-lease") == 0)
    return run_lease_bench(argc > 2 ? argv[2] : nullptr);

  std::vector<std::uint32_t> sweep{2, 4, 8};
  if (bench::full_mode()) sweep.push_back(16);

  std::printf("=== Figure 5: latency CDFs, mix workload ===\n");
  for (std::uint32_t k : sweep) {
    std::printf("\n--- %u partitions ---\n", k);
    print_cdf("DynaStar", run_cdf(core::ExecutionMode::kDynaStar, k));
    print_cdf("S-SMR*", run_cdf(core::ExecutionMode::kSSMR, k));
  }
  std::printf(
      "\nReading guide (vs paper Fig. 5): S-SMR* achieves lower latency than\n"
      "DynaStar for ~80%% of the load; DynaStar's tail reflects the extra\n"
      "data returned to the source partitions after each borrow.\n");
  return 0;
}
