// Figure 5: CDF of command latency for the mix workload (85% timeline /
// 15% post) on different partition counts, DynaStar vs S-SMR*.
//
// Shape to check: S-SMR* sits left of (below) DynaStar for ~80% of the
// distribution — DynaStar's multi-partition commands pay the extra
// variable-return round trip — while both tails stretch with partition
// count.
#include <cstdio>
#include <vector>

#include "bench/chirper_common.h"

using namespace dynastar;

namespace {

std::vector<Histogram::CdfPoint> run_cdf(core::ExecutionMode mode,
                                         std::uint32_t partitions) {
  auto config = mode == core::ExecutionMode::kDynaStar
                    ? baselines::config_for("dynastar", partitions)
                    : baselines::config_for("ssmr", partitions);
  config.repartition_hint_threshold = 1'000'000'000;
  bench::ChirperParams params;
  params.clients_per_partition = 7;  // ~75% of saturation
  auto setup = bench::make_chirper(config, bench::chirper::Placement::kOptimized,
                                   params);
  setup.system->run_until(seconds(4));
  const auto* latency = setup.system->metrics().find_histogram("latency");
  return latency ? latency->cdf() : std::vector<Histogram::CdfPoint>{};
}

void print_cdf(const char* label,
               const std::vector<Histogram::CdfPoint>& cdf) {
  std::printf("# %s: latency_ms cumulative_fraction (decile samples)\n", label);
  double next = 0.1;
  for (const auto& point : cdf) {
    if (point.fraction + 1e-12 < next) continue;
    while (next <= point.fraction + 1e-12) {
      std::printf("  %8.3f  %.2f\n", to_millis(point.value), next);
      next += 0.1;
    }
    if (next > 0.999) break;
  }
}

}  // namespace

int main() {
  std::vector<std::uint32_t> sweep{2, 4, 8};
  if (bench::full_mode()) sweep.push_back(16);

  std::printf("=== Figure 5: latency CDFs, mix workload ===\n");
  for (std::uint32_t k : sweep) {
    std::printf("\n--- %u partitions ---\n", k);
    print_cdf("DynaStar", run_cdf(core::ExecutionMode::kDynaStar, k));
    print_cdf("S-SMR*", run_cdf(core::ExecutionMode::kSSMR, k));
  }
  std::printf(
      "\nReading guide (vs paper Fig. 5): S-SMR* achieves lower latency than\n"
      "DynaStar for ~80%% of the load; DynaStar's tail reflects the extra\n"
      "data returned to the source partitions after each borrow.\n");
  return 0;
}
