// Figure 2: the impact of graph repartitioning on TPC-C.
//
// Paper setup: 4 warehouses, 4 partitions, all variables initially scattered
// at random. Almost every transaction is multi-partition and throughput is
// terrible; once the oracle computes a METIS plan (~t=50s in the paper) the
// partitions exchange objects and throughput jumps while the multi-partition
// fraction collapses.
//
// We compress the time axis (default 60 simulated seconds, repartition
// triggered by hint volume ~15-25s in) — the paper's absolute times depend
// only on its hint threshold. Shape to check: low throughput + ~100% multi-
// partition before the plan; a burst of exchanged objects at the plan; high
// throughput + low multi-partition after.
#include <cstdio>

#include "baselines/registry.h"
#include "bench/bench_common.h"
#include "workloads/tpcc.h"

using namespace dynastar;
namespace tpcc = workloads::tpcc;

int main() {
  const std::size_t duration = bench::full_mode() ? 120 : 60;
  const std::uint32_t warehouses = 4;

  auto config = baselines::config_for("dynastar", warehouses);
  // The paper's oracle fires after a hint threshold (~t=50s there). We pin
  // the trigger at duration/3 so the before/after phases are clearly
  // visible regardless of the load level.
  config.repartition_hint_threshold = UINT64_MAX;
  const std::size_t trigger_at = duration / 3;

  tpcc::Scale scale;
  core::System system(config, tpcc::tpcc_app_factory(scale));
  tpcc::setup(system, scale, warehouses, tpcc::Placement::kRandom);

  const std::uint32_t clients = 48;
  for (std::uint32_t c = 0; c < clients; ++c) {
    system.add_client(std::make_unique<tpcc::TpccDriver>(
        scale, warehouses, c % warehouses + 1, c / warehouses % 10 + 1));
  }
  system.run_until(seconds(static_cast<std::int64_t>(trigger_at)));
  system.oracle(0).request_repartition();
  system.oracle(1).request_repartition();
  system.run_until(seconds(static_cast<std::int64_t>(duration)));

  std::printf("=== Figure 2: repartitioning on DynaStar (TPC-C, 4 WH / 4 partitions) ===\n");
  std::printf("%4s %12s %12s %12s %8s\n", "t(s)", "tput(tps)", "objects_exch",
              "mpart(tps)", "mpart%%");
  const auto& completed = system.metrics().series("completed");
  const auto& exchanged = system.metrics().series("objects_exchanged");
  const auto& executed = system.metrics().series("executed");
  const auto& mpart = system.metrics().series("mpart");
  for (std::size_t t = 0; t < duration; ++t) {
    const double exec = executed.at(t);
    std::printf("%4zu %12.0f %12.0f %12.0f %7.1f%%\n", t, completed.at(t),
                exchanged.at(t), mpart.at(t),
                exec > 0 ? 100.0 * mpart.at(t) / exec : 0.0);
  }
  const double plans = system.metrics().series("oracle.plans_applied").total();
  std::printf("\nplans applied: %.0f\n", plans);
  std::printf(
      "\nReading guide (vs paper Fig. 2): with randomly scattered districts a\n"
      "large fraction of transactions is multi-partition and throughput sits\n"
      "at a fraction of its potential; at the plan there is a burst of\n"
      "exchanged objects, after which throughput jumps (~2.5x here) and the\n"
      "multi-partition rate collapses to TPC-C's inherent remote rate\n"
      "(~8%%). The paper's before/after contrast is larger because its EC2\n"
      "deployment pays far more per coordination round trip; the shape —\n"
      "low/flat, burst, high/flat — is the reproduced claim.\n");
  return 0;
}
