// Kernel throughput benchmark: raw events/sec through the simulation kernel
// and messages/sec through the message plane, plus a full-stack run, emitted
// as BENCH_kernel.json for the CI perf gate (scripts/check_report.py --bench).
//
// Three sections:
//  1. Event storm through the current kernel (SBO EventFn + two-tier calendar
//     queue) and through LegacyKernel — a faithful copy of the pre-PR kernel
//     (std::function actions, one binary heap) — with the identical seeded
//     workload, so the speedup is apples-to-apples in one binary.
//  2. Message-plane storm: make_message allocation/release through the
//     per-World pool, reporting pool hit rates.
//  3. Full-stack sanity point: a traced KV scenario, commands/sec wall-clock.
//
// The storm keeps a large steady pending population (default 256k — the
// regime of paper-scale fig3/fig4 runs, override with DYNASTAR_STORM_PENDING)
// with a latency spread shaped like the real system: mostly link/service
// delays within ~500 us, a slice of batch/heartbeat-scale timers, a far
// tail. A single binary heap degrades with the pending count (cold cache
// lines on every sift); the calendar wheel keeps its working set in the
// few buckets around the cursor.
//
// Usage: kernel_throughput [output.json]   (default BENCH_kernel.json)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/metric_names.h"
#include "core/parallel_exec.h"
#include "core/scenario.h"
#include "sim/message.h"
#include "sim/simulator.h"
#include "sim/world.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"

namespace dynastar {
namespace {

/// The pre-PR simulation kernel, embedded verbatim for comparison:
/// std::function actions in a single binary heap on (time, seq).
class LegacyKernel {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }

  void schedule_after(SimTime delay, Action action) {
    SimTime t = now_ + delay;
    heap_.push_back(Event{t, next_seq_++, std::move(action)});
    std::push_heap(heap_.begin(), heap_.end(), EventLater{});
  }

  bool step() {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    now_ = ev.time;
    ev.action();
    return true;
  }

  void run() {
    while (step()) {
    }
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Deterministic delay sequence with the production-shaped spread: 80%
/// near-future (0-500 us), 15% timer-scale (0-50 ms), 5% far tail (0-400 ms,
/// beyond the calendar wheel horizon).
SimTime storm_delay(std::mt19937_64& rng) {
  const std::uint64_t shape = rng() % 100;
  if (shape < 80) return static_cast<SimTime>(rng() % microseconds(500));
  if (shape < 95) return static_cast<SimTime>(rng() % milliseconds(50));
  return static_cast<SimTime>(rng() % milliseconds(400));
}

constexpr std::uint64_t kStormSeed = 0xD15EA5E;
inline std::uint64_t storm_pending() {
  static const std::uint64_t v = [] {
    const char* env = std::getenv("DYNASTAR_STORM_PENDING");
    return env == nullptr ? 262144ULL : std::strtoull(env, nullptr, 10);
  }();
  return v;
}

/// Runs the self-rescheduling event storm on `kernel` (Simulator or
/// LegacyKernel): seeds kStormPending events; each handler re-schedules a
/// successor until `total_events` have been scheduled. Returns events/sec.
///
/// The scheduled lambda captures 32 bytes — the exact shape of the kernel's
/// hottest production event, Network's delivery lambda [this, from, to, msg].
/// That size is what separates the two kernels: it heap-allocates under
/// std::function (libstdc++ inline capacity is 16 bytes) and stays inline
/// in the 48-byte EventFn buffer.
template <typename Kernel>
double run_event_storm(std::uint64_t total_events) {
  struct Ctx {
    Kernel kernel;
    std::mt19937_64 rng{kStormSeed};
    std::uint64_t executed = 0;
    std::uint64_t scheduled = 0;
    std::uint64_t checksum = 0;
    std::uint64_t budget = 0;
  };
  Ctx ctx;
  ctx.budget = total_events;

  struct Handler {
    static void run(Ctx* ctx, std::uint64_t from, std::uint64_t to,
                    std::uint64_t payload) {
      ++ctx->executed;
      ctx->checksum ^= from + to + payload;
      if (ctx->scheduled < ctx->budget) {
        ++ctx->scheduled;
        schedule(ctx);
      }
    }
    static void schedule(Ctx* ctx) {
      const std::uint64_t from = ctx->rng() % 64;
      const std::uint64_t to = ctx->rng() % 64;
      const std::uint64_t payload = ctx->rng();
      ctx->kernel.schedule_after(
          storm_delay(ctx->rng),
          [ctx, from, to, payload] { run(ctx, from, to, payload); });
    }
  };

  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < storm_pending(); ++i) {
    ++ctx.scheduled;
    Handler::schedule(&ctx);
  }
  ctx.kernel.run();
  const double elapsed = wall_seconds_since(start);
  if (ctx.checksum == 0xdeadbeef) std::printf("(unlikely checksum)\n");
  return static_cast<double>(ctx.executed) / elapsed;
}

/// Best-of-N wrapper: wall-clock benches jitter; the max is the stable
/// estimate of what the code can do.
template <typename Fn>
double best_of(int rounds, Fn&& fn) {
  double best = 0;
  for (int i = 0; i < rounds; ++i) best = std::max(best, fn());
  return best;
}

struct MessageStormResult {
  double messages_per_sec = 0;
  std::uint64_t pool_allocs = 0;
  std::uint64_t pool_reuses = 0;
};

/// Message-plane storm: allocate and release pooled messages with a small
/// in-flight window, the way protocol messages churn through the simulator.
MessageStormResult run_message_storm(std::uint64_t total_messages) {
  struct Payload final : sim::Message {
    [[nodiscard]] const char* type_name() const override { return "Payload"; }
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };
  sim::MessagePool pool;
  pool.install();
  constexpr std::size_t kWindow = 256;
  std::vector<sim::MessagePtr> window(kWindow);

  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < total_messages; ++i) {
    auto msg = sim::make_mutable_message<Payload>();
    msg->a = i;
    msg->b = i ^ 0x5bd1e995;
    window[i % kWindow] = std::move(msg);  // releases the displaced message
  }
  window.clear();
  const double elapsed = wall_seconds_since(start);

  MessageStormResult result;
  result.messages_per_sec = static_cast<double>(total_messages) / elapsed;
  result.pool_allocs = pool.allocs();
  result.pool_reuses = pool.reuses();
  return result;
}

struct FullStackResult {
  double commands = 0;
  double wall_seconds = 0;
};

/// Full-stack sanity point: single-partition KV, 1 simulated second.
/// `checkpoint_interval` 0 disables checkpointing so the default-on cost can
/// be gated (full_stack vs full_stack_nockpt in check_report.py --bench).
FullStackResult run_full_stack(paxos::Slot checkpoint_interval) {
  const auto start = std::chrono::steady_clock::now();
  auto system = core::ScenarioBuilder()
                    .partitions(1)
                    .checkpoint_interval(checkpoint_interval)
                    .tune([](core::SystemConfig& c) {
                      c.repartition_hint_threshold = UINT64_MAX;
                    })
                    .app(workloads::kv_app_factory())
                    .preload_kv(16, workloads::KvObject())
                    .clients(4,
                             [](std::size_t) {
                               return std::make_unique<
                                   workloads::RandomKvDriver>(16, 0.5, 0.0);
                             })
                    .build();
  system->run_until(seconds(1));
  FullStackResult result;
  result.wall_seconds = wall_seconds_since(start);
  result.commands = system->metrics().series(metric::kCompleted).total();
  return result;
}

// ---------------------------------------------------------------------------
// Parallel executor sections (schema v2).

/// Closed-loop driver hammering exactly one key — the two extremes for the
/// parallel-executor gate: every client on its own key (conflict-free
/// batches) or every client writing one hot key (fully conflicting batches).
class FixedKeyDriver final : public core::ClientDriver {
 public:
  FixedKeyDriver(std::uint64_t key, double write_fraction)
      : key_(key), write_fraction_(write_fraction) {}

  std::optional<core::CommandSpec> next(Rng& rng, SimTime /*now*/) override {
    core::CommandSpec spec;
    spec.objects.emplace_back(ObjectId{key_}, core::VertexId{key_});
    const bool write = rng.chance(write_fraction_);
    spec.payload = sim::make_message<workloads::KvOp>(
        write ? workloads::KvOp::Kind::kPut : workloads::KvOp::Kind::kGet,
        rng.uniform(1, 1u << 30));
    spec.read_only = !write;
    return spec;
  }

 private:
  std::uint64_t key_;
  double write_fraction_;
};

constexpr std::uint32_t kExecLanes = 4;
constexpr std::uint32_t kExecClients = 24;

/// Simulated-lane section: a CPU-saturated single partition (24 closed-loop
/// clients, 100 us per command) where the executor's makespan accounting is
/// the bottleneck. Simulated commands/sec is deterministic — bit-identical
/// on every machine — so this number gates in CI against the checked-in
/// baseline with no jitter budget.
double run_sim_lanes(bool conflict_free, std::uint32_t lanes) {
  auto system =
      core::ScenarioBuilder()
          .partitions(1)
          .exec_lanes(lanes)
          .checkpoint_interval(0)
          .tune([](core::SystemConfig& c) {
            c.repartition_hint_threshold = UINT64_MAX;
          })
          .app(workloads::kv_app_factory(microseconds(100)))
          .preload_kv(kExecClients, workloads::KvObject())
          .clients(kExecClients,
                   [conflict_free](std::size_t i) {
                     return std::make_unique<FixedKeyDriver>(
                         conflict_free ? i : 0, conflict_free ? 0.5 : 1.0);
                   })
          .build();
  system->run_until(seconds(2));
  return system->metrics().series(metric::kCompleted).total() / 2.0;
}

/// Thread-backend section: the executor alone (no simulator), 512 spin
/// tasks of ~30 us each, disjoint write sets (conflict-free: one wave, all
/// lanes busy) or one shared vertex (conflict-heavy: 512 waves of one —
/// pure barrier overhead). Returns wall seconds; speedup is the within-run
/// serial/lanes ratio, so the gate is machine-independent.
double run_thread_harness(bool conflict_free, std::uint32_t lanes) {
  constexpr std::size_t kTasks = 512;
  constexpr int kSpin = 60'000;
  std::vector<core::ExecIntent> intents;
  intents.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    core::ExecIntent intent;
    intent.writes.emplace_back(conflict_free ? i : 0);
    intents.push_back(std::move(intent));
  }
  std::vector<std::uint64_t> sinks(kTasks, 0);
  core::ParallelExecutor exec(lanes, /*real_threads=*/lanes > 1);
  const auto start = std::chrono::steady_clock::now();
  exec.run(intents, [&](std::size_t i) -> SimTime {
    std::uint64_t x = 0x9e3779b97f4a7c15ULL + i;
    for (int k = 0; k < kSpin; ++k)
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    sinks[i] = x;  // keeps the spin observable
    return microseconds(30);
  });
  const double elapsed = wall_seconds_since(start);
  std::uint64_t mix = 0;
  for (std::uint64_t s : sinks) mix ^= s;
  if (mix == 0xdeadbeef) std::printf("(unlikely sink)\n");
  return elapsed;
}

}  // namespace
}  // namespace dynastar

int main(int argc, char** argv) {
  using namespace dynastar;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_kernel.json";

  constexpr std::uint64_t kStormEvents = 4'000'000;
  constexpr std::uint64_t kStormMessages = 8'000'000;
  constexpr int kRounds = 3;

  std::printf("kernel_throughput: event storm (%llu events, %llu pending, "
              "best of %d)...\n",
              static_cast<unsigned long long>(kStormEvents),
              static_cast<unsigned long long>(storm_pending()), kRounds);
  const double current_eps = best_of(
      kRounds, [] { return run_event_storm<sim::Simulator>(kStormEvents); });
  std::printf("  calendar kernel : %.0f events/sec\n", current_eps);
  const double legacy_eps = best_of(
      kRounds, [] { return run_event_storm<LegacyKernel>(kStormEvents); });
  std::printf("  legacy kernel   : %.0f events/sec\n", legacy_eps);
  const double speedup = current_eps / legacy_eps;
  std::printf("  speedup         : %.2fx\n", speedup);

  std::printf("kernel_throughput: message storm (%llu messages)...\n",
              static_cast<unsigned long long>(kStormMessages));
  const auto msg = run_message_storm(kStormMessages);
  std::printf("  message plane   : %.0f messages/sec (pool allocs=%llu "
              "reuses=%llu)\n",
              msg.messages_per_sec,
              static_cast<unsigned long long>(msg.pool_allocs),
              static_cast<unsigned long long>(msg.pool_reuses));

  std::printf("kernel_throughput: full stack (1 simulated second of KV)...\n");
  // Default-config run (periodic checkpoints on) vs checkpointing disabled:
  // the wall-clock ratio is the cost of the checkpoint subsystem, gated <5%
  // by check_report.py --bench. An aggressive interval (512 slots) makes the
  // 1-simulated-second run actually cross boundaries.
  FullStackResult stack, stack_nockpt;
  for (int round = 0; round < kRounds; ++round) {
    const auto with = run_full_stack(/*checkpoint_interval=*/512);
    if (round == 0 || with.wall_seconds < stack.wall_seconds) stack = with;
    const auto without = run_full_stack(/*checkpoint_interval=*/0);
    if (round == 0 || without.wall_seconds < stack_nockpt.wall_seconds)
      stack_nockpt = without;
  }
  std::printf("  full stack      : %.0f commands in %.2fs wall "
              "(%.0f commands/sec)\n",
              stack.commands, stack.wall_seconds,
              stack.commands / stack.wall_seconds);
  std::printf("  no checkpoints  : %.0f commands in %.2fs wall "
              "(%.0f commands/sec)\n",
              stack_nockpt.commands, stack_nockpt.wall_seconds,
              stack_nockpt.commands / stack_nockpt.wall_seconds);

  std::printf("kernel_throughput: parallel executor, simulated lanes "
              "(%u clients, 1 partition, deterministic)...\n", kExecClients);
  const double sim_free_serial = run_sim_lanes(/*conflict_free=*/true, 1);
  const double sim_free_lanes = run_sim_lanes(/*conflict_free=*/true,
                                              kExecLanes);
  const double sim_heavy_serial = run_sim_lanes(/*conflict_free=*/false, 1);
  const double sim_heavy_lanes = run_sim_lanes(/*conflict_free=*/false,
                                               kExecLanes);
  std::printf("  conflict-free   : serial %.0f cmds/s, %u lanes %.0f cmds/s "
              "(%.2fx)\n",
              sim_free_serial, kExecLanes, sim_free_lanes,
              sim_free_lanes / sim_free_serial);
  std::printf("  conflict-heavy  : serial %.0f cmds/s, %u lanes %.0f cmds/s "
              "(%.2fx)\n",
              sim_heavy_serial, kExecLanes, sim_heavy_lanes,
              sim_heavy_lanes / sim_heavy_serial);

  std::printf("kernel_throughput: parallel executor, thread lanes "
              "(512 spin tasks, best of %d)...\n", kRounds);
  auto min_wall = [](int rounds, auto&& fn) {
    double best = fn();
    for (int i = 1; i < rounds; ++i) best = std::min(best, fn());
    return best;
  };
  const double thr_free_serial =
      min_wall(kRounds, [] { return run_thread_harness(true, 1); });
  const double thr_free_lanes =
      min_wall(kRounds, [] { return run_thread_harness(true, kExecLanes); });
  const double thr_heavy_serial =
      min_wall(kRounds, [] { return run_thread_harness(false, 1); });
  const double thr_heavy_lanes =
      min_wall(kRounds, [] { return run_thread_harness(false, kExecLanes); });
  std::printf("  conflict-free   : serial %.3fs, %u lanes %.3fs (%.2fx)\n",
              thr_free_serial, kExecLanes, thr_free_lanes,
              thr_free_serial / thr_free_lanes);
  std::printf("  conflict-heavy  : serial %.3fs, %u lanes %.3fs (%.2fx)\n",
              thr_heavy_serial, kExecLanes, thr_heavy_lanes,
              thr_heavy_serial / thr_heavy_lanes);

  Json report = Json::Object{};
  report["schema"] = "dynastar-bench-kernel-v2";
  report["kernel"] = Json::Object{
      {"events", static_cast<std::uint64_t>(kStormEvents)},
      {"pending", storm_pending()},
      {"events_per_sec", current_eps},
  };
  report["legacy_kernel"] = Json::Object{
      {"events", static_cast<std::uint64_t>(kStormEvents)},
      {"pending", storm_pending()},
      {"events_per_sec", legacy_eps},
  };
  report["speedup_vs_legacy"] = speedup;
  report["message_plane"] = Json::Object{
      {"messages", static_cast<std::uint64_t>(kStormMessages)},
      {"messages_per_sec", msg.messages_per_sec},
      {"pool_allocs", msg.pool_allocs},
      {"pool_reuses", msg.pool_reuses},
  };
  report["full_stack"] = Json::Object{
      {"commands", stack.commands},
      {"wall_seconds", stack.wall_seconds},
      {"commands_per_sec", stack.commands / stack.wall_seconds},
  };
  report["full_stack_nockpt"] = Json::Object{
      {"commands", stack_nockpt.commands},
      {"wall_seconds", stack_nockpt.wall_seconds},
      {"commands_per_sec", stack_nockpt.commands / stack_nockpt.wall_seconds},
  };
  Json parallel = Json::Object{};
  parallel["lanes"] = static_cast<std::uint64_t>(kExecLanes);
  // The thread-backend speedup gate only makes sense with real cores to run
  // the lanes on; check_report.py skips it when this is below `lanes`.
  parallel["hardware_concurrency"] =
      static_cast<std::uint64_t>(std::thread::hardware_concurrency());
  parallel["sim_conflict_free"] = Json::Object{
      {"serial_cps", sim_free_serial},
      {"lanes_cps", sim_free_lanes},
      {"speedup", sim_free_lanes / sim_free_serial},
  };
  parallel["sim_conflict_heavy"] = Json::Object{
      {"serial_cps", sim_heavy_serial},
      {"lanes_cps", sim_heavy_lanes},
      {"speedup", sim_heavy_lanes / sim_heavy_serial},
  };
  parallel["threads_conflict_free"] = Json::Object{
      {"serial_wall_s", thr_free_serial},
      {"lanes_wall_s", thr_free_lanes},
      {"speedup", thr_free_serial / thr_free_lanes},
  };
  parallel["threads_conflict_heavy"] = Json::Object{
      {"serial_wall_s", thr_heavy_serial},
      {"lanes_wall_s", thr_heavy_lanes},
      {"speedup", thr_heavy_serial / thr_heavy_lanes},
  };
  report["parallel_exec"] = std::move(parallel);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  const std::string text = report.dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
