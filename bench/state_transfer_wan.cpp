// WAN state-transfer benchmark: drives the full DynaStar stack on a
// wan:3dc topology (replicas, acceptors and clients striped across three
// simulated datacenters with thin inter-site links) through a scripted
// fault sequence, and reports goodput (kOk completions/sec) over two
// windows:
//
//   steady    [1s, 6s)   WAN topology, all replicas up
//   degraded  [6s, 11s)  inter-site bandwidth collapsed 10x; a replica
//                        crashes at 6.2s and recovers at 8.2s, so its
//                        chunked snapshot install runs entirely inside
//                        the collapse window
//
// The bandwidth-adaptation gate (scripts/check_report.py --bench):
//   degraded_ratio = degraded goodput / steady goodput >= 0.7
// i.e. the chunked transfer trickling over the starved links must not
// starve command execution — windowed chunk pulls with per-chunk
// retransmit backoff keep the recovery in the background while quorums on
// unaffected state keep deciding.
//
// Everything is scripted (fixed seed, fixed instants), so the emitted
// BENCH_transfer.json is reproducible run-to-run.
//
// Usage: state_transfer_wan [output.json]   (default BENCH_transfer.json)
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/metric_names.h"
#include "core/scenario.h"
#include "core/system.h"
#include "sim/world.h"
#include "workloads/kv.h"
#include "workloads/kv_drivers.h"

namespace dynastar {
namespace {

constexpr std::uint64_t kKeys = 12;
constexpr std::size_t kClients = 8;

constexpr std::int64_t kSteadyFrom = 1, kSteadyTo = 6;
constexpr std::int64_t kDegradedFrom = 6, kDegradedTo = 11;

/// Records every successful completion instant; `completed` alone would
/// also count kTimeout / kOverloaded completions, which are not goodput.
class GoodputDriver final : public core::ClientDriver {
 public:
  GoodputDriver(std::unique_ptr<core::ClientDriver> inner,
                std::vector<SimTime>* oks)
      : inner_(std::move(inner)), oks_(oks) {}

  std::optional<core::CommandSpec> next(Rng& rng, SimTime now) override {
    return inner_->next(rng, now);
  }

  void on_result(const core::CommandSpec& spec, core::ReplyStatus status,
                 const sim::MessagePtr& payload, SimTime issued_at,
                 SimTime completed_at) override {
    if (status == core::ReplyStatus::kOk) oks_->push_back(completed_at);
    inner_->on_result(spec, status, payload, issued_at, completed_at);
  }

 private:
  std::unique_ptr<core::ClientDriver> inner_;
  std::vector<SimTime>* oks_;
};

struct Window {
  std::int64_t from_s = 0;
  std::int64_t to_s = 0;
  std::uint64_t ok_commands = 0;

  [[nodiscard]] double seconds() const {
    return static_cast<double>(to_s - from_s);
  }
  [[nodiscard]] double goodput() const {
    return static_cast<double>(ok_commands) / seconds();
  }
};

Window count_window(const std::vector<SimTime>& oks, std::int64_t from_s,
                    std::int64_t to_s) {
  Window w;
  w.from_s = from_s;
  w.to_s = to_s;
  const SimTime from = seconds(from_s), to = seconds(to_s);
  for (SimTime t : oks)
    if (t >= from && t < to) ++w.ok_commands;
  return w;
}

Json window_json(const Window& w) {
  return Json::Object{
      {"from_s", w.from_s},
      {"to_s", w.to_s},
      {"seconds", w.seconds()},
      {"ok_commands", w.ok_commands},
      {"goodput_per_sec", w.goodput()},
  };
}

}  // namespace
}  // namespace dynastar

int main(int argc, char** argv) {
  using namespace dynastar;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_transfer.json";

  std::vector<SimTime> oks;
  const auto driver_factory = [&oks](std::size_t) {
    return std::make_unique<GoodputDriver>(
        std::make_unique<workloads::RandomKvDriver>(kKeys, 0.5, 0.2), &oks);
  };

  auto system =
      core::ScenarioBuilder()
          .execution_mode(core::ExecutionMode::kDynaStar)
          .partitions(3)
          .seed(42)
          .net_preset("wan:3dc")
          .tune([](core::SystemConfig& c) {
            // The 2-second outage below outruns peers' retained logs, so
            // the mid-collapse recovery REQUIRES a snapshot install — and
            // stable checkpoints at most one interval old keep it on the
            // chunked path. Small chunks force a real multi-chunk pull.
            c.paxos.checkpoint_interval = 16;
            c.paxos.catchup_window = 16;
            c.paxos.transfer_chunk_bytes = 512;
          })
          .app(workloads::kv_app_factory())
          .preload_kv(kKeys, workloads::KvObject(0))
          .clients(kClients, driver_factory)
          .build();

  auto& world = system->world();
  // 10x inter-site bandwidth collapse over the whole degraded window.
  world.sim().schedule_at(seconds(kDegradedFrom), [&world] {
    world.network().set_bandwidth_scale(0.1);
  });
  world.sim().schedule_at(seconds(kDegradedTo), [&world] {
    world.network().set_bandwidth_scale(1.0);
  });
  // Crash a partition-0 follower 200 ms into the collapse; it recovers
  // while bandwidth is still down and must pull its chunks over the
  // starved links.
  const ProcessId victim =
      system->topology().group(core::group_of(PartitionId{0})).replicas[1];
  world.sim().schedule_at(seconds(kDegradedFrom) + milliseconds(200),
                          [&world, victim] { world.crash(victim); });
  world.sim().schedule_at(seconds(kDegradedFrom) + milliseconds(2200),
                          [&world, victim] { world.recover(victim); });

  std::printf("state_transfer_wan: wan:3dc, %zu clients, 10x bandwidth "
              "collapse + crash/recover inside the window...\n", kClients);
  system->run_until(seconds(kDegradedTo) + seconds(1));

  const Window steady = count_window(oks, kSteadyFrom, kSteadyTo);
  const Window degraded = count_window(oks, kDegradedFrom, kDegradedTo);
  const double degraded_ratio = degraded.goodput() / steady.goodput();

  const double chunks_sent =
      system->metrics().counter(metric::kTransferChunksSent);
  const double chunks_retx =
      system->metrics().counter(metric::kTransferChunksRetransmitted);
  const double snapshot_installs =
      system->metrics().counter(metric::kServerSnapshotInstalls);

  std::printf("  steady   : %6llu ok in %.0fs = %8.1f/s\n",
              static_cast<unsigned long long>(steady.ok_commands),
              steady.seconds(), steady.goodput());
  std::printf("  degraded : %6llu ok in %.0fs = %8.1f/s  (ratio %.2f)\n",
              static_cast<unsigned long long>(degraded.ok_commands),
              degraded.seconds(), degraded.goodput(), degraded_ratio);
  std::printf("  transfer : %.0f chunks (%.0f retransmitted), "
              "%.0f snapshot installs\n",
              chunks_sent, chunks_retx, snapshot_installs);

  Json report = Json::Object{};
  report["schema"] = "dynastar-bench-transfer-v1";
  report["config"] = Json::Object{
      {"net", std::string("wan:3dc")},
      {"clients", static_cast<std::uint64_t>(kClients)},
      {"transfer_chunk_bytes", static_cast<std::uint64_t>(512)},
      {"bandwidth_drop_factor", 0.1},
      {"seed", static_cast<std::uint64_t>(42)},
  };
  report["steady"] = window_json(steady);
  report["degraded"] = window_json(degraded);
  report["degraded_ratio"] = degraded_ratio;
  report["transfer"] = Json::Object{
      {"chunks_sent", chunks_sent},
      {"chunks_retransmitted", chunks_retx},
      {"snapshot_installs", snapshot_installs},
  };

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  const std::string text = report.dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
